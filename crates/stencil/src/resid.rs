//! The RESID kernel of SPEC/NAS MGRID (Fig 13): a 27-point residual.
//!
//! ```text
//! R(I1,I2,I3) = V(I1,I2,I3) - A0*U(centre)
//!                           - A1*(sum of  6 face   neighbours)
//!                           - A2*(sum of 12 edge   neighbours)
//!                           - A3*(sum of  8 corner neighbours)
//! ```
//!
//! RESID is the paper's "realistic application kernel": MGRID spends ~60%
//! of its time here, the stencil is a full 27-point box, and a second input
//! array `V` introduces the cross-interference of Section 3.5 (which the
//! paper simply tolerates — one `V` stream against 27-fold `U` reuse).
//! Tiling follows Fig 13's right column: tile `I2`/`I1`, leave `I3` intact.

use tiling3d_cachesim::AccessSink;
use tiling3d_grid::Array3;
use tiling3d_loopnest::{
    for_each, for_each_rows, for_each_tiled, for_each_tiled_rows, IterSpace, TileDims,
};

use crate::backend::{self, Backend, ExecBackend, LaneEngine, Resolved, RowEngine, RowKernel};
use crate::rowexec;

/// FLOPs per interior point: 26 adds within/between neighbour groups plus
/// the `V` subtraction and 4 coefficient multiplies — 31 total. (A1 is kept
/// in the expression even when numerically zero, like the benchmark's
/// reference source.)
pub const FLOPS_PER_POINT: u64 = 31;

/// Stencil coefficients `(A0, A1, A2, A3)` for centre / faces / edges /
/// corners.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Coeffs {
    /// Centre weight.
    pub a0: f64,
    /// Face weight (the official MG operator uses 0 here — kept in the
    /// computation regardless, as the benchmark source does).
    pub a1: f64,
    /// Edge weight.
    pub a2: f64,
    /// Corner weight.
    pub a3: f64,
}

impl Coeffs {
    /// The NAS/SPEC MGRID `A` operator: `(-8/3, 0, 1/6, 1/12)`.
    pub const MGRID_A: Coeffs = Coeffs {
        a0: -8.0 / 3.0,
        a1: 0.0,
        a2: 1.0 / 6.0,
        a3: 1.0 / 12.0,
    };
}

/// FLOPs of one sweep over the interior of an `ni x nj x nk` grid.
pub fn sweep_flops(ni: usize, nj: usize, nk: usize) -> u64 {
    IterSpace::interior(ni, nj, nk).points() * FLOPS_PER_POINT
}

/// The 6 face offsets in Fig 13's source order, as linear-index deltas.
#[inline(always)]
pub(crate) fn faces(di: i64, ps: i64) -> [i64; 6] {
    [-1, 1, -di, di, -ps, ps]
}

/// The 12 edge offsets (|d1|+|d2|+|d3| = 2) in Fig 13's source order.
#[inline(always)]
pub(crate) fn edges(di: i64, ps: i64) -> [i64; 12] {
    [
        -1 - di,
        1 - di,
        -1 + di,
        1 + di,
        -di - ps,
        di - ps,
        -di + ps,
        di + ps,
        -1 - ps,
        -1 + ps,
        1 - ps,
        1 + ps,
    ]
}

/// The 8 corner offsets (|d1|+|d2|+|d3| = 3) in Fig 13's source order.
#[inline(always)]
pub(crate) fn corners(di: i64, ps: i64) -> [i64; 8] {
    [
        -1 - di - ps,
        1 - di - ps,
        -1 + di - ps,
        1 + di - ps,
        -1 - di + ps,
        1 - di + ps,
        -1 + di + ps,
        1 + di + ps,
    ]
}

/// One RESID sweep, optionally tiled (`Some(tile)` = the Fig 13 right-hand
/// schedule, tiling `I2`/`I1` and leaving `I3` untouched).
///
/// Runs on the row engine: the 27-point box becomes nine overlapping
/// unit-stride `U` rows per output row (see [`rowexec::resid_row`]), with
/// accumulation order identical to [`crate::reference::resid`] — results
/// are bitwise identical.
///
/// # Panics
/// Panics if the three arrays differ in logical or allocated extents.
pub fn sweep(
    r: &mut Array3<f64>,
    u: &Array3<f64>,
    v: &Array3<f64>,
    coeffs: &Coeffs,
    tile: Option<TileDims>,
) {
    sweep_with::<RowEngine>(r, u, v, coeffs, tile);
}

/// One sweep on the backend `sel` resolves to — the runtime-dispatch
/// form of [`sweep_with`].
pub fn sweep_backend(
    r: &mut Array3<f64>,
    u: &Array3<f64>,
    v: &Array3<f64>,
    coeffs: &Coeffs,
    tile: Option<TileDims>,
    sel: ExecBackend,
) {
    match backend::resolve(sel, RowKernel::Resid) {
        Resolved::Row => sweep_with::<RowEngine>(r, u, v, coeffs, tile),
        Resolved::Lane => sweep_with::<LaneEngine>(r, u, v, coeffs, tile),
    }
}

/// [`sweep`] on an explicit execution backend `B`.
pub fn sweep_with<B: Backend>(
    r: &mut Array3<f64>,
    u: &Array3<f64>,
    v: &Array3<f64>,
    coeffs: &Coeffs,
    tile: Option<TileDims>,
) {
    for pair in [(r.ni(), u.ni()), (r.di(), u.di()), (r.dj(), u.dj())] {
        assert_eq!(pair.0, pair.1, "R and U extents differ");
    }
    for pair in [(u.ni(), v.ni()), (u.di(), v.di()), (u.dj(), v.dj())] {
        assert_eq!(pair.0, pair.1, "U and V extents differ");
    }
    let (di, ps) = (u.di(), u.plane_stride());
    let space = IterSpace::interior(u.ni(), u.nj(), u.nk());
    let rv = r.as_mut_slice();
    let (uv, vv) = (u.as_slice(), v.as_slice());
    let row = |i0: usize, i1: usize, j: usize, k: usize| {
        let lo = j * di + k * ps + i0;
        let len = i1 - i0 + 1;
        let h = lo - 1; // halo start: one element left of the row
        let rows: rowexec::Rows9 = [
            &uv[h - di - ps..],
            &uv[h - ps..],
            &uv[h + di - ps..],
            &uv[h - di..],
            &uv[h..],
            &uv[h + di..],
            &uv[h - di + ps..],
            &uv[h + ps..],
            &uv[h + di + ps..],
        ];
        B::resid_row(&mut rv[lo..lo + len], &vv[lo..], rows, coeffs);
    };
    match tile {
        None => for_each_rows(space, row),
        Some(t) => for_each_tiled_rows(space, t, row),
    }
    rowexec::note_sweep(space.points(), FLOPS_PER_POINT);
}

/// Replays the exact address trace of one sweep. Layout: `R` at byte 0,
/// then `U`, then `V`, consecutively allocated (`di x dj x nk` each).
/// Per point: 27 `U` loads in source order, the `V` load, the `R` store.
pub fn trace<S: AccessSink>(
    ni: usize,
    nj: usize,
    nk: usize,
    di: usize,
    dj: usize,
    tile: Option<TileDims>,
    sink: &mut S,
) {
    let bytes = (di * dj * nk * 8) as u64;
    trace_at(ni, nj, nk, di, dj, tile, [0, bytes, 2 * bytes], sink);
}

/// Like [`trace`] but with explicit byte base addresses `[R, U, V]` for
/// inter-variable padding experiments (Section 3.5).
#[allow(clippy::too_many_arguments)]
pub fn trace_at<S: AccessSink>(
    ni: usize,
    nj: usize,
    nk: usize,
    di: usize,
    dj: usize,
    tile: Option<TileDims>,
    bases: [u64; 3],
    sink: &mut S,
) {
    assert!(di >= ni && dj >= nj);
    let ps = di * dj;
    let [r_base, u_base, v_base] = bases;
    let (dii, psi) = (di as i64, ps as i64);
    let space = IterSpace::interior(ni, nj, nk);
    let body = |i: usize, j: usize, k: usize| {
        let idx = (i + j * di + k * ps) as i64;
        let u = |off: i64| u_base + ((idx + off) * 8) as u64;
        // Same stream as iterating faces()/edges()/corners() in order, with
        // every in-order U(i-1,·,·), U(i+1,·,·) pair batched as a +16-byte
        // run (the pairs usually share a cache line).
        sink.read(u(0));
        // faces: -1, 1, -di, di, -ps, ps
        sink.read_run(u(-1), 16, 2);
        sink.read(u(-dii));
        sink.read(u(dii));
        sink.read(u(-psi));
        sink.read(u(psi));
        // edges: (-1,1)∓di, then the di/ps edges, then (-1,1)∓ps singles
        sink.read_run(u(-1 - dii), 16, 2);
        sink.read_run(u(-1 + dii), 16, 2);
        sink.read(u(-dii - psi));
        sink.read(u(dii - psi));
        sink.read(u(-dii + psi));
        sink.read(u(dii + psi));
        sink.read(u(-1 - psi));
        sink.read(u(-1 + psi));
        sink.read(u(1 - psi));
        sink.read(u(1 + psi));
        // corners: four (-1,1) pairs across the ∓di, ∓ps combinations
        sink.read_run(u(-1 - dii - psi), 16, 2);
        sink.read_run(u(-1 + dii - psi), 16, 2);
        sink.read_run(u(-1 - dii + psi), 16, 2);
        sink.read_run(u(-1 + dii + psi), 16, 2);
        sink.read(v_base + (idx * 8) as u64);
        sink.write(r_base + (idx * 8) as u64);
    };
    match tile {
        None => for_each(space, body),
        Some(t) => for_each_tiled(space, t, body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiling3d_cachesim::CountingSink;
    use tiling3d_grid::{fill_linear3, fill_random};

    fn arrays(n: usize, di: usize, dj: usize) -> (Array3<f64>, Array3<f64>, Array3<f64>) {
        let r = Array3::with_padding(n, n, n, di, dj);
        let mut u = Array3::with_padding(n, n, n, di, dj);
        let mut v = Array3::with_padding(n, n, n, di, dj);
        fill_random(&mut u, 11);
        fill_random(&mut v, 22);
        (r, u, v)
    }

    #[test]
    fn offset_tables_partition_the_27_point_box() {
        use std::collections::HashSet;
        let (di, ps) = (100i64, 100 * 100i64);
        let mut all = HashSet::new();
        all.insert(0i64);
        for o in faces(di, ps)
            .iter()
            .chain(&edges(di, ps))
            .chain(&corners(di, ps))
        {
            assert!(all.insert(*o), "duplicate offset {o}");
        }
        assert_eq!(all.len(), 27);
    }

    #[test]
    fn affine_field_oracle() {
        // For an affine U each neighbour group sums to (count x centre),
        // so R = V - (A0 + 6*A1 + 12*A2 + 8*A3) * U(centre).
        let n = 8;
        let (mut r, mut u, mut v) = arrays(n, n, n);
        fill_linear3(&mut u, 1.0, 2.0, -1.5, 0.25);
        fill_linear3(&mut v, 0.0, 0.0, 0.0, 3.0);
        let c = Coeffs {
            a0: -2.0,
            a1: 0.5,
            a2: 0.25,
            a3: 0.125,
        };
        sweep(&mut r, &u, &v, &c, None);
        let w = c.a0 + 6.0 * c.a1 + 12.0 * c.a2 + 8.0 * c.a3;
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let expect = 3.0 - w * u.get(i, j, k);
                    assert!((r.get(i, j, k) - expect).abs() < 1e-9, "({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn mgrid_coeffs_annihilate_constants() {
        // A0 + 12*A2 + 8*A3 = -8/3 + 2 + 2/3 = 0: the MG operator kills
        // constant fields, so R = V exactly.
        let n = 7;
        let (mut r, mut u, mut v) = arrays(n, n, n);
        u.fill(5.0);
        fill_random(&mut v, 3);
        sweep(&mut r, &u, &v, &Coeffs::MGRID_A, None);
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    assert!((r.get(i, j, k) - v.get(i, j, k)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn tiled_equals_untiled_bitwise() {
        for &(n, di, dj, ti, tj) in &[
            (9usize, 9usize, 9usize, 3usize, 3usize),
            (12, 15, 13, 5, 2),
            (10, 10, 10, 1, 1),
        ] {
            let (mut r1, u, v) = arrays(n, di, dj);
            let mut r2 = r1.clone();
            sweep(&mut r1, &u, &v, &Coeffs::MGRID_A, None);
            sweep(
                &mut r2,
                &u,
                &v,
                &Coeffs::MGRID_A,
                Some(TileDims::new(ti, tj)),
            );
            assert!(r1.logical_eq(&r2), "n={n} tile=({ti},{tj})");
        }
    }

    #[test]
    fn trace_emission_order_matches_offset_tables() {
        // The hand-batched body must replay byte-for-byte the stream the
        // offset-table loops produced before runs were introduced.
        struct Collect(Vec<(bool, u64)>);
        impl AccessSink for Collect {
            fn read(&mut self, a: u64) {
                self.0.push((false, a));
            }
            fn write(&mut self, a: u64) {
                self.0.push((true, a));
            }
        }
        let (n, di, dj) = (7usize, 9usize, 8usize);
        let mut got = Collect(Vec::new());
        trace(n, n, n, di, dj, None, &mut got);

        let ps = di * dj;
        let bytes = (di * dj * n * 8) as u64;
        let (dii, psi) = (di as i64, ps as i64);
        let mut want = Vec::new();
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let idx = (i + j * di + k * ps) as i64;
                    let u = |off: i64| bytes + ((idx + off) * 8) as u64;
                    want.push((false, u(0)));
                    for o in faces(dii, psi)
                        .iter()
                        .chain(&edges(dii, psi))
                        .chain(&corners(dii, psi))
                    {
                        want.push((false, u(*o)));
                    }
                    want.push((false, 2 * bytes + (idx * 8) as u64));
                    want.push((true, (idx * 8) as u64));
                }
            }
        }
        assert_eq!(got.0, want);
    }

    #[test]
    fn trace_counts_match_stencil_arity() {
        let n = 9;
        let mut c = CountingSink::default();
        trace(n, n, n, n, n, None, &mut c);
        let pts = (n as u64 - 2).pow(3);
        assert_eq!(c.reads, 28 * pts); // 27 U + 1 V
        assert_eq!(c.writes, pts);
        let mut ct = CountingSink::default();
        trace(n, n, n, 11, 12, Some(TileDims::new(2, 4)), &mut ct);
        assert_eq!(ct.reads, 28 * pts);
        assert_eq!(ct.writes, pts);
    }

    #[test]
    fn flops_accounting() {
        assert_eq!(sweep_flops(10, 10, 10), 512 * 31);
    }
}
