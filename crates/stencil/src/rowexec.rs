//! Row kernels: the bounds-check-free compute layer of the row engine.
//!
//! Every function here updates one contiguous (or stride-2) row segment.
//! The caller has already split the row into overlapping *read* slices —
//! one per stencil offset, each starting at the first point's neighbour —
//! and one disjoint *write* slice. Each kernel re-slices every source to
//! the exact length it will touch before the loop, so the optimizer can
//! hoist all bounds checks out of the loop and autovectorize the `I`
//! walk. The floating-point expression (operand order included) is
//! copied verbatim from the per-point reference in
//! [`reference`](crate::reference), which keeps the engine bit-identical
//! to it.

use crate::resid::Coeffs;

/// Emits the per-sweep observability counters shared by every engine
/// sweep: a deterministic `stencil.points_updated` counter and a
/// `stencil.flops` gauge.
pub(crate) fn note_sweep(points: u64, flops_per_point: u64) {
    if tiling3d_obs::collecting() {
        tiling3d_obs::counter_add("stencil.points_updated", points);
        tiling3d_obs::gauge_add("stencil.flops", (points * flops_per_point) as f64);
    }
}

/// One Jacobi 3D row: `dst[i] = c * (w[i] + e[i] + n[i] + s[i] + d[i] + u[i])`.
///
/// Sources are the six neighbour rows (west/east along `I`, north/south
/// along `J`, down/up along `K`), each at least `dst.len()` long.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
pub fn jacobi3d_row(
    dst: &mut [f64],
    w: &[f64],
    e: &[f64],
    n: &[f64],
    s: &[f64],
    d: &[f64],
    u: &[f64],
    c: f64,
) {
    let len = dst.len();
    let (w, e) = (&w[..len], &e[..len]);
    let (n, s) = (&n[..len], &s[..len]);
    let (d, u) = (&d[..len], &u[..len]);
    for i in 0..len {
        dst[i] = c * (w[i] + e[i] + n[i] + s[i] + d[i] + u[i]);
    }
}

/// One Jacobi 2D row: `dst[i] = c * (w[i] + e[i] + n[i] + s[i])`.
#[inline(never)]
pub fn jacobi2d_row(dst: &mut [f64], w: &[f64], e: &[f64], n: &[f64], s: &[f64], c: f64) {
    let len = dst.len();
    let (w, e, n, s) = (&w[..len], &e[..len], &n[..len], &s[..len]);
    for i in 0..len {
        dst[i] = c * (w[i] + e[i] + n[i] + s[i]);
    }
}

/// The nine unit-stride `U` rows a RESID row update reads: index
/// `(dk + 1) * 3 + (dj + 1)` holds the row at `(j + dj, k + dk)`, each
/// starting one element *left* of the output row (`i0 - 1`) and at least
/// `dst.len() + 2` long, so offsets `-1/0/+1` along `I` become indices
/// `x`, `x + 1`, `x + 2`.
pub type Rows9<'a> = [&'a [f64]; 9];

/// One RESID row. Accumulation order matches the reference exactly:
/// `s1` over the 6 faces, `s2` over the 12 edges, `s3` over the 8
/// corners, each starting from `0.0` and adding in the offset-table
/// order of [`resid`](crate::resid).
#[inline(never)]
pub fn resid_row(dst: &mut [f64], v: &[f64], rows: Rows9<'_>, c: &Coeffs) {
    let len = dst.len();
    if len == 0 {
        return;
    }
    let v = &v[..len];
    let h = len + 2;
    let [nd, cd, sd, nc, cc, sc, nu, cu, su] = rows.map(|r| &r[..h]);
    for x in 0..len {
        let mut s1 = 0.0;
        s1 += cc[x];
        s1 += cc[x + 2];
        s1 += nc[x + 1];
        s1 += sc[x + 1];
        s1 += cd[x + 1];
        s1 += cu[x + 1];
        let mut s2 = 0.0;
        s2 += nc[x];
        s2 += nc[x + 2];
        s2 += sc[x];
        s2 += sc[x + 2];
        s2 += nd[x + 1];
        s2 += sd[x + 1];
        s2 += nu[x + 1];
        s2 += su[x + 1];
        s2 += cd[x];
        s2 += cu[x];
        s2 += cd[x + 2];
        s2 += cu[x + 2];
        let mut s3 = 0.0;
        s3 += nd[x];
        s3 += nd[x + 2];
        s3 += sd[x];
        s3 += sd[x + 2];
        s3 += nu[x];
        s3 += nu[x + 2];
        s3 += su[x];
        s3 += su[x + 2];
        dst[x] = v[x] - c.a0 * cc[x + 1] - c.a1 * s1 - c.a2 * s2 - c.a3 * s3;
    }
}

/// Computes the new values of one stride-2 red-black row into `scratch`
/// (one slot per updated point, in row order). Sources all start at the
/// first updated point plus their stencil offset, so update `t` reads
/// index `2 * t`; each must be at least `2 * scratch.len() - 1` long.
///
/// The caller scatters `scratch` back with [`scatter_stride2`] *after*
/// this returns; because every in-row read (`w`/`e` at `±1`) lands on the
/// opposite color, the split never observes its own writes and stays
/// bit-identical to the in-place per-point reference.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
pub fn redblack_row(
    scratch: &mut [f64],
    ctr: &[f64],
    w: &[f64],
    n: &[f64],
    e: &[f64],
    s: &[f64],
    d: &[f64],
    u: &[f64],
    c1: f64,
    c2: f64,
) {
    let m = scratch.len();
    if m == 0 {
        return;
    }
    let l = 2 * m - 1;
    let (ctr, w, n) = (&ctr[..l], &w[..l], &n[..l]);
    let (e, s) = (&e[..l], &s[..l]);
    let (d, u) = (&d[..l], &u[..l]);
    for (t, slot) in scratch.iter_mut().enumerate() {
        let x = 2 * t;
        *slot = c1 * ctr[x] + c2 * (w[x] + n[x] + e[x] + s[x] + d[x] + u[x]);
    }
}

/// 2D variant of [`redblack_row`] (no down/up planes).
#[allow(clippy::too_many_arguments)]
#[inline(never)]
pub fn redblack2d_row(
    scratch: &mut [f64],
    ctr: &[f64],
    w: &[f64],
    n: &[f64],
    e: &[f64],
    s: &[f64],
    c1: f64,
    c2: f64,
) {
    let m = scratch.len();
    if m == 0 {
        return;
    }
    let l = 2 * m - 1;
    let (ctr, w) = (&ctr[..l], &w[..l]);
    let (n, e, s) = (&n[..l], &e[..l], &s[..l]);
    for (t, slot) in scratch.iter_mut().enumerate() {
        let x = 2 * t;
        *slot = c1 * ctr[x] + c2 * (w[x] + n[x] + e[x] + s[x]);
    }
}

/// Writes `scratch[t]` to `row[2 * t]` — the scatter half of a stride-2
/// red-black row update.
#[inline]
pub fn scatter_stride2(row: &mut [f64], scratch: &[f64]) {
    let m = scratch.len();
    if m == 0 {
        return;
    }
    let row = &mut row[..2 * m - 1];
    for t in 0..m {
        row[2 * t] = scratch[t];
    }
}
