//! Explicit-lane row kernels: the compute layer of the lane engine.
//!
//! Each function here is the lane-engine counterpart of a
//! [`rowexec`](crate::rowexec) row kernel, generic over a compile-time
//! lane width `LANES` and unroll factor `UNROLL` (see
//! [`LaneStrategy`](crate::backend::LaneStrategy)). A row segment is
//! processed as `chunks_exact` blocks of `LANES * UNROLL` points, then
//! `chunks_exact` groups of `LANES` points for whatever the blocks left
//! over; each group converts its chunks to `&[f64; LANES]` array
//! references (a safe `try_into`, no `unsafe`), so the compiler sees
//! fixed-width independent lane operations it can lower straight to
//! vector instructions — no autovectorization heuristics involved. Only
//! the final `len % LANES` points run the scalar `rowexec` body
//! verbatim.
//!
//! The contiguous kernels drive the group loops with *zipped*
//! `chunks_exact` iterators rather than indexed slice windows, and the
//! public row kernels are `#[inline(never)]`. Both are load-bearing for
//! performance stability: indexed windows leave per-group bounds checks
//! whose elimination depends on how the surrounding sweep was inlined
//! (the same kernel measured up to 2x slower depending on which crate
//! instantiated it), and keeping the kernels outlined preserves the
//! `noalias` parameter attributes the vectorizer needs.
//!
//! **Bitwise-identity contract.** Lanes run *across* `i`: lane `l`
//! computes point `x + l`'s full expression in exactly the per-point
//! operand/accumulation order of [`reference`](crate::reference) (RESID's
//! ordered `s1`/`s2`/`s3` partial sums are kept as per-lane accumulator
//! arrays fed one stencil term at a time). No reassociation happens
//! *within* a point, so every result bit-matches the row engine and the
//! reference for any `LANES`/`UNROLL` — the property
//! `tests/backend_golden.rs` gates.

use crate::resid::Coeffs;
use crate::rowexec::Rows9;

/// Borrows the `LANES`-wide window of `s` at `x` as an array reference.
#[inline(always)]
fn vl<const LANES: usize>(s: &[f64], x: usize) -> &[f64; LANES] {
    s[x..x + LANES].try_into().expect("lane window in bounds")
}

/// Adds one stencil term (`src` at lane base `x`) into the per-lane
/// accumulators — one *ordered* scalar add per lane, vectorized across
/// lanes only.
#[inline(always)]
fn addl<const LANES: usize>(acc: &mut [f64; LANES], src: &[f64], x: usize) {
    let v = vl::<LANES>(src, x);
    for (a, b) in acc.iter_mut().zip(v) {
        *a += *b;
    }
}

/// Gathers `LANES` stride-2 elements of `src` starting at update index
/// `t0` (element index `2 * t0`) into a lane array.
#[inline(always)]
fn gather2<const LANES: usize>(src: &[f64], t0: usize) -> [f64; LANES] {
    let wnd = &src[2 * t0..2 * t0 + 2 * LANES - 1];
    let mut out = [0.0; LANES];
    for (l, o) in out.iter_mut().enumerate() {
        *o = wnd[2 * l];
    }
    out
}

/// One `LANES`-wide group of the 3D Jacobi body. Every operand arrives
/// as a `chunks_exact` chunk, so the array conversions are
/// statically-true length checks the compiler folds away — the loop body
/// is branchless lane arithmetic regardless of where the caller was
/// instantiated.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn jacobi3d_lane_group<const LANES: usize>(
    dl: &mut [f64],
    w: &[f64],
    e: &[f64],
    n: &[f64],
    s: &[f64],
    d: &[f64],
    u: &[f64],
    c: f64,
) {
    let dv: &mut [f64; LANES] = dl.try_into().expect("chunk is LANES wide");
    let (wv, ev) = (vl::<LANES>(w, 0), vl::<LANES>(e, 0));
    let (nv, sv) = (vl::<LANES>(n, 0), vl::<LANES>(s, 0));
    let (dn, up) = (vl::<LANES>(d, 0), vl::<LANES>(u, 0));
    for (l, out) in dv.iter_mut().enumerate() {
        *out = c * (wv[l] + ev[l] + nv[l] + sv[l] + dn[l] + up[l]);
    }
}

/// Lane form of [`rowexec::jacobi3d_row`](crate::rowexec::jacobi3d_row).
#[allow(clippy::too_many_arguments)]
#[inline(never)]
pub fn jacobi3d_row<const LANES: usize, const UNROLL: usize>(
    dst: &mut [f64],
    w: &[f64],
    e: &[f64],
    n: &[f64],
    s: &[f64],
    d: &[f64],
    u: &[f64],
    c: f64,
) {
    let len = dst.len();
    let (w, e) = (&w[..len], &e[..len]);
    let (n, s) = (&n[..len], &s[..len]);
    let (d, u) = (&d[..len], &u[..len]);
    let block = LANES * UNROLL;
    let bhead = len - len % block;
    let head = len - len % LANES;
    let (dst_blocks, dst_rest) = dst.split_at_mut(bhead);
    let (dst_mid, dst_tail) = dst_rest.split_at_mut(head - bhead);
    // All three phases are zipped `chunks_exact` streams: no indexed
    // slice windows, hence no bounds checks for the optimizer to hoist
    // (or fail to hoist — indexed windows made codegen quality depend on
    // the instantiation site).
    let zip7 = |d0: &mut [f64], width: usize, lo: usize, hi: usize| {
        // Closure captures the pre-sliced operands; returns nothing —
        // it drives the group body over one dst region.
        d0.chunks_exact_mut(width)
            .zip(w[lo..hi].chunks_exact(width))
            .zip(e[lo..hi].chunks_exact(width))
            .zip(n[lo..hi].chunks_exact(width))
            .zip(s[lo..hi].chunks_exact(width))
            .zip(d[lo..hi].chunks_exact(width))
            .zip(u[lo..hi].chunks_exact(width))
            .for_each(|((((((dl, wl), el), nl), sl), dnl), ul)| {
                dl.chunks_exact_mut(LANES)
                    .zip(wl.chunks_exact(LANES))
                    .zip(el.chunks_exact(LANES))
                    .zip(nl.chunks_exact(LANES))
                    .zip(sl.chunks_exact(LANES))
                    .zip(dnl.chunks_exact(LANES))
                    .zip(ul.chunks_exact(LANES))
                    .for_each(|((((((dg, wg), eg), ng), sg), dng), ug)| {
                        jacobi3d_lane_group::<LANES>(dg, wg, eg, ng, sg, dng, ug, c);
                    });
            });
    };
    zip7(dst_blocks, block, 0, bhead);
    zip7(dst_mid, LANES, bhead, head);
    dst_tail
        .iter_mut()
        .zip(&w[head..])
        .zip(&e[head..])
        .zip(&n[head..])
        .zip(&s[head..])
        .zip(&d[head..])
        .zip(&u[head..])
        .for_each(|((((((out, wv), ev), nv), sv), dn), up)| {
            *out = c * (wv + ev + nv + sv + dn + up);
        });
}

/// One `LANES`-wide group of the 2D Jacobi body (see
/// [`jacobi3d_lane_group`] for why operands are exact chunks).
#[inline(always)]
fn jacobi2d_lane_group<const LANES: usize>(
    dl: &mut [f64],
    w: &[f64],
    e: &[f64],
    n: &[f64],
    s: &[f64],
    c: f64,
) {
    let dv: &mut [f64; LANES] = dl.try_into().expect("chunk is LANES wide");
    let (wv, ev) = (vl::<LANES>(w, 0), vl::<LANES>(e, 0));
    let (nv, sv) = (vl::<LANES>(n, 0), vl::<LANES>(s, 0));
    for (l, out) in dv.iter_mut().enumerate() {
        *out = c * (wv[l] + ev[l] + nv[l] + sv[l]);
    }
}

/// Lane form of [`rowexec::jacobi2d_row`](crate::rowexec::jacobi2d_row).
#[inline(never)]
pub fn jacobi2d_row<const LANES: usize, const UNROLL: usize>(
    dst: &mut [f64],
    w: &[f64],
    e: &[f64],
    n: &[f64],
    s: &[f64],
    c: f64,
) {
    let len = dst.len();
    let (w, e, n, s) = (&w[..len], &e[..len], &n[..len], &s[..len]);
    let block = LANES * UNROLL;
    let bhead = len - len % block;
    let head = len - len % LANES;
    let (dst_blocks, dst_rest) = dst.split_at_mut(bhead);
    let (dst_mid, dst_tail) = dst_rest.split_at_mut(head - bhead);
    let zip5 = |d0: &mut [f64], width: usize, lo: usize, hi: usize| {
        d0.chunks_exact_mut(width)
            .zip(w[lo..hi].chunks_exact(width))
            .zip(e[lo..hi].chunks_exact(width))
            .zip(n[lo..hi].chunks_exact(width))
            .zip(s[lo..hi].chunks_exact(width))
            .for_each(|((((dl, wl), el), nl), sl)| {
                dl.chunks_exact_mut(LANES)
                    .zip(wl.chunks_exact(LANES))
                    .zip(el.chunks_exact(LANES))
                    .zip(nl.chunks_exact(LANES))
                    .zip(sl.chunks_exact(LANES))
                    .for_each(|((((dg, wg), eg), ng), sg)| {
                        jacobi2d_lane_group::<LANES>(dg, wg, eg, ng, sg, c);
                    });
            });
    };
    zip5(dst_blocks, block, 0, bhead);
    zip5(dst_mid, LANES, bhead, head);
    dst_tail
        .iter_mut()
        .zip(&w[head..])
        .zip(&e[head..])
        .zip(&n[head..])
        .zip(&s[head..])
        .for_each(|((((out, wv), ev), nv), sv)| {
            *out = c * (wv + ev + nv + sv);
        });
}

/// Lane form of [`rowexec::resid_row`](crate::rowexec::resid_row).
///
/// The three shell sums are per-lane accumulator arrays fed one term at
/// a time via [`addl`], which preserves the reference accumulation order
/// within each point while running `LANES` points in parallel.
#[inline(never)]
pub fn resid_row<const LANES: usize, const UNROLL: usize>(
    dst: &mut [f64],
    v: &[f64],
    rows: Rows9<'_>,
    c: &Coeffs,
) {
    let len = dst.len();
    if len == 0 {
        return;
    }
    let v = &v[..len];
    let h = len + 2;
    let rows9 = rows.map(|r| &r[..h]);
    let block = LANES * UNROLL;
    let bhead = len - len % block;
    let head = len - len % LANES;
    let (dst_blocks, dst_rest) = dst.split_at_mut(bhead);
    let (dst_mid, dst_tail) = dst_rest.split_at_mut(head - bhead);
    for (bi, db) in dst_blocks.chunks_exact_mut(block).enumerate() {
        let x0 = bi * block;
        for (ui, dl) in db.chunks_exact_mut(LANES).enumerate() {
            resid_lane_group::<LANES>(dl, x0 + ui * LANES, v, &rows9, c);
        }
    }
    for (ui, dl) in dst_mid.chunks_exact_mut(LANES).enumerate() {
        resid_lane_group::<LANES>(dl, bhead + ui * LANES, v, &rows9, c);
    }
    let [nd, cd, sd, nc, cc, sc, nu, cu, su] = rows9;
    for (t, out) in dst_tail.iter_mut().enumerate() {
        let x = head + t;
        let mut s1 = 0.0;
        s1 += cc[x];
        s1 += cc[x + 2];
        s1 += nc[x + 1];
        s1 += sc[x + 1];
        s1 += cd[x + 1];
        s1 += cu[x + 1];
        let mut s2 = 0.0;
        s2 += nc[x];
        s2 += nc[x + 2];
        s2 += sc[x];
        s2 += sc[x + 2];
        s2 += nd[x + 1];
        s2 += sd[x + 1];
        s2 += nu[x + 1];
        s2 += su[x + 1];
        s2 += cd[x];
        s2 += cu[x];
        s2 += cd[x + 2];
        s2 += cu[x + 2];
        let mut s3 = 0.0;
        s3 += nd[x];
        s3 += nd[x + 2];
        s3 += sd[x];
        s3 += sd[x + 2];
        s3 += nu[x];
        s3 += nu[x + 2];
        s3 += su[x];
        s3 += su[x + 2];
        *out = v[x] - c.a0 * cc[x + 1] - c.a1 * s1 - c.a2 * s2 - c.a3 * s3;
    }
}

/// One `LANES`-wide group of the RESID body: the three ordered shell
/// sums as per-lane accumulator arrays, one stencil term at a time.
///
/// Each of the nine rows is re-borrowed once as a `LANES + 2` window at
/// the group base, so every stencil term is a *constant-offset*
/// sub-window of an already-checked slice — one bounds check per row,
/// not one per term.
#[inline(always)]
fn resid_lane_group<const LANES: usize>(
    dl: &mut [f64],
    x: usize,
    v: &[f64],
    rows: &Rows9<'_>,
    c: &Coeffs,
) {
    let [nd, cd, sd, nc, cc, sc, nu, cu, su] = rows.map(|r| &r[x..x + LANES + 2]);
    let mut s1 = [0.0; LANES];
    addl(&mut s1, cc, 0);
    addl(&mut s1, cc, 2);
    addl(&mut s1, nc, 1);
    addl(&mut s1, sc, 1);
    addl(&mut s1, cd, 1);
    addl(&mut s1, cu, 1);
    let mut s2 = [0.0; LANES];
    addl(&mut s2, nc, 0);
    addl(&mut s2, nc, 2);
    addl(&mut s2, sc, 0);
    addl(&mut s2, sc, 2);
    addl(&mut s2, nd, 1);
    addl(&mut s2, sd, 1);
    addl(&mut s2, nu, 1);
    addl(&mut s2, su, 1);
    addl(&mut s2, cd, 0);
    addl(&mut s2, cu, 0);
    addl(&mut s2, cd, 2);
    addl(&mut s2, cu, 2);
    let mut s3 = [0.0; LANES];
    addl(&mut s3, nd, 0);
    addl(&mut s3, nd, 2);
    addl(&mut s3, sd, 0);
    addl(&mut s3, sd, 2);
    addl(&mut s3, nu, 0);
    addl(&mut s3, nu, 2);
    addl(&mut s3, su, 0);
    addl(&mut s3, su, 2);
    let dv: &mut [f64; LANES] = dl.try_into().expect("chunk is LANES wide");
    let vv = vl::<LANES>(v, x);
    let cv = vl::<LANES>(cc, 1);
    for (l, out) in dv.iter_mut().enumerate() {
        *out = vv[l] - c.a0 * cv[l] - c.a1 * s1[l] - c.a2 * s2[l] - c.a3 * s3[l];
    }
}

/// Lane form of [`rowexec::redblack_row`](crate::rowexec::redblack_row):
/// stride-2 parity rows are gathered into lane arrays ([`gather2`]),
/// combined, and written to the contiguous scratch — the caller's
/// scatter is unchanged.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
pub fn redblack_row<const LANES: usize, const UNROLL: usize>(
    scratch: &mut [f64],
    ctr: &[f64],
    w: &[f64],
    n: &[f64],
    e: &[f64],
    s: &[f64],
    d: &[f64],
    u: &[f64],
    c1: f64,
    c2: f64,
) {
    let m = scratch.len();
    if m == 0 {
        return;
    }
    let seg = 2 * m - 1;
    let (ctr, w, n) = (&ctr[..seg], &w[..seg], &n[..seg]);
    let (e, s) = (&e[..seg], &s[..seg]);
    let (d, u) = (&d[..seg], &u[..seg]);
    let block = LANES * UNROLL;
    let bhead = m - m % block;
    let head = m - m % LANES;
    let (sc_blocks, sc_rest) = scratch.split_at_mut(bhead);
    let (sc_mid, sc_tail) = sc_rest.split_at_mut(head - bhead);
    for (bi, sb) in sc_blocks.chunks_exact_mut(block).enumerate() {
        let t0b = bi * block;
        for (ui, sl) in sb.chunks_exact_mut(LANES).enumerate() {
            redblack_lane_group::<LANES>(sl, t0b + ui * LANES, ctr, w, n, e, s, d, u, c1, c2);
        }
    }
    for (ui, sl) in sc_mid.chunks_exact_mut(LANES).enumerate() {
        redblack_lane_group::<LANES>(sl, bhead + ui * LANES, ctr, w, n, e, s, d, u, c1, c2);
    }
    for (t, slot) in sc_tail.iter_mut().enumerate() {
        let x = 2 * (head + t);
        *slot = c1 * ctr[x] + c2 * (w[x] + n[x] + e[x] + s[x] + d[x] + u[x]);
    }
}

/// One `LANES`-wide group of the 3D red-black body on stride-2 rows.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn redblack_lane_group<const LANES: usize>(
    sl: &mut [f64],
    t0: usize,
    ctr: &[f64],
    w: &[f64],
    n: &[f64],
    e: &[f64],
    s: &[f64],
    d: &[f64],
    u: &[f64],
    c1: f64,
    c2: f64,
) {
    let cv = gather2::<LANES>(ctr, t0);
    let wv = gather2::<LANES>(w, t0);
    let nv = gather2::<LANES>(n, t0);
    let ev = gather2::<LANES>(e, t0);
    let sv = gather2::<LANES>(s, t0);
    let dn = gather2::<LANES>(d, t0);
    let up = gather2::<LANES>(u, t0);
    let out: &mut [f64; LANES] = sl.try_into().expect("chunk is LANES wide");
    for (l, o) in out.iter_mut().enumerate() {
        *o = c1 * cv[l] + c2 * (wv[l] + nv[l] + ev[l] + sv[l] + dn[l] + up[l]);
    }
}

/// One `LANES`-wide group of the 2D red-black body on stride-2 rows.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn redblack2d_lane_group<const LANES: usize>(
    sl: &mut [f64],
    t0: usize,
    ctr: &[f64],
    w: &[f64],
    n: &[f64],
    e: &[f64],
    s: &[f64],
    c1: f64,
    c2: f64,
) {
    let cv = gather2::<LANES>(ctr, t0);
    let wv = gather2::<LANES>(w, t0);
    let nv = gather2::<LANES>(n, t0);
    let ev = gather2::<LANES>(e, t0);
    let sv = gather2::<LANES>(s, t0);
    let out: &mut [f64; LANES] = sl.try_into().expect("chunk is LANES wide");
    for (l, o) in out.iter_mut().enumerate() {
        *o = c1 * cv[l] + c2 * (wv[l] + nv[l] + ev[l] + sv[l]);
    }
}

/// Lane form of
/// [`rowexec::redblack2d_row`](crate::rowexec::redblack2d_row).
#[allow(clippy::too_many_arguments)]
#[inline(never)]
pub fn redblack2d_row<const LANES: usize, const UNROLL: usize>(
    scratch: &mut [f64],
    ctr: &[f64],
    w: &[f64],
    n: &[f64],
    e: &[f64],
    s: &[f64],
    c1: f64,
    c2: f64,
) {
    let m = scratch.len();
    if m == 0 {
        return;
    }
    let seg = 2 * m - 1;
    let (ctr, w) = (&ctr[..seg], &w[..seg]);
    let (n, e, s) = (&n[..seg], &e[..seg], &s[..seg]);
    let block = LANES * UNROLL;
    let bhead = m - m % block;
    let head = m - m % LANES;
    let (sc_blocks, sc_rest) = scratch.split_at_mut(bhead);
    let (sc_mid, sc_tail) = sc_rest.split_at_mut(head - bhead);
    for (bi, sb) in sc_blocks.chunks_exact_mut(block).enumerate() {
        let t0b = bi * block;
        for (ui, sl) in sb.chunks_exact_mut(LANES).enumerate() {
            redblack2d_lane_group::<LANES>(sl, t0b + ui * LANES, ctr, w, n, e, s, c1, c2);
        }
    }
    for (ui, sl) in sc_mid.chunks_exact_mut(LANES).enumerate() {
        redblack2d_lane_group::<LANES>(sl, bhead + ui * LANES, ctr, w, n, e, s, c1, c2);
    }
    for (t, slot) in sc_tail.iter_mut().enumerate() {
        let x = 2 * (head + t);
        *slot = c1 * ctr[x] + c2 * (w[x] + n[x] + e[x] + s[x]);
    }
}

#[cfg(test)]
mod tests {
    use crate::rowexec;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 997.0 - 0.5
            })
            .collect()
    }

    #[test]
    fn jacobi3d_lane_matches_row_for_every_remainder() {
        let src = data(4 * 80 + 16, 3);
        for len in [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65] {
            let mut row = vec![0.0; len];
            let mut lane = vec![0.0; len];
            rowexec::jacobi3d_row(
                &mut row,
                &src[0..],
                &src[1..],
                &src[2..],
                &src[3..],
                &src[4..],
                &src[5..],
                0.31,
            );
            super::jacobi3d_row::<8, 4>(
                &mut lane,
                &src[0..],
                &src[1..],
                &src[2..],
                &src[3..],
                &src[4..],
                &src[5..],
                0.31,
            );
            assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                lane.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len={len}"
            );
        }
    }

    #[test]
    fn redblack_lane_matches_row_for_every_remainder() {
        let src = data(600, 9);
        for m in [0usize, 1, 2, 5, 8, 9, 16, 17, 33, 64, 65] {
            let mut row = vec![0.0; m];
            let mut lane = vec![0.0; m];
            rowexec::redblack_row(
                &mut row,
                &src[0..],
                &src[1..],
                &src[2..],
                &src[3..],
                &src[4..],
                &src[5..],
                &src[6..],
                0.4,
                0.1,
            );
            super::redblack_row::<4, 2>(
                &mut lane,
                &src[0..],
                &src[1..],
                &src[2..],
                &src[3..],
                &src[4..],
                &src[5..],
                &src[6..],
                0.4,
                0.1,
            );
            assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                lane.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "m={m}"
            );
        }
    }
}
