//! 3D Red-black SOR (Fig 12): naive, fused, and skewed-tiled schedules.
//!
//! Red points (even Fortran coordinate sum) are updated from their black
//! neighbours, then black points from the updated reds, all **in place** on
//! a single array. The naive schedule makes two full sweeps per iteration
//! (terrible locality: the array is pulled through cache twice, at half
//! line utilisation). The *fused* schedule updates black points of plane
//! `K` immediately after red points of plane `K+1`, so one pass suffices —
//! but now **three** planes must stay cache-resident, which is where the
//! paper's tiling (bottom of Fig 12, with the tile origin skewed by
//! `K - KK`) comes in.
//!
//! All three schedules compute **bitwise identical** results: every black
//! update still sees fully-updated red neighbours, and reds only read
//! original blacks. The tests verify this exhaustively, which pins down the
//! delicate index arithmetic of the skewed tiled loop.

use tiling3d_cachesim::AccessSink;
use tiling3d_grid::Array3;
use tiling3d_loopnest::{stride2_last, TileDims};

use crate::backend::{self, Backend, ExecBackend, LaneEngine, Resolved, RowEngine, RowKernel};
use crate::rowexec;

/// FLOPs per updated point (2 multiplies + 6 adds).
pub const FLOPS_PER_POINT: u64 = 8;

/// Which Fig 12 schedule to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Two full passes: all red points, then all black points.
    Naive,
    /// One fused pass: red of plane `K+1`, then black of plane `K`.
    Fused,
    /// The fused pass tiled over `(J, I)` with skewed tile origins.
    Tiled(TileDims),
}

/// FLOPs in one full red-black iteration (every interior point updated
/// once) on an `n x n x nk` grid.
pub fn sweep_flops(n: usize, nk: usize) -> u64 {
    let interior = (n - 2) as u64;
    interior * interior * (nk as u64 - 2) * FLOPS_PER_POINT
}

/// Walks the **naive** schedule as stride-2 rows: pass 0 yields the red
/// rows (Fortran-even coordinate sums), pass 1 the black rows.
fn rows_naive(n: usize, nk: usize, mut f: impl FnMut(usize, usize, usize, usize)) {
    for p in 0..2usize {
        for k in 1..=nk - 2 {
            for j in 1..=n - 2 {
                let i0 = 1 + (k + j + p) % 2;
                if i0 <= n - 2 {
                    f(i0, stride2_last(i0, n - 2), j, k);
                }
            }
        }
    }
}

/// Walks the **fused** schedule (middle of Fig 12) as stride-2 rows.
fn rows_fused(n: usize, nk: usize, mut f: impl FnMut(usize, usize, usize, usize)) {
    for kk in 0..=nk - 2 {
        // Two-trip inner K loop: K = KK+1 (red), then K = KK (black).
        for k in [kk + 1, kk] {
            if !(1..=nk - 2).contains(&k) {
                continue;
            }
            let parity = if k == kk + 1 { 0 } else { 1 }; // red : black
            for j in 1..=n - 2 {
                let i0 = 1 + (k + j + parity) % 2;
                if i0 <= n - 2 {
                    f(i0, stride2_last(i0, n - 2), j, k);
                }
            }
        }
    }
}

/// Walks the **tiled** schedule (bottom of Fig 12) as stride-2 rows, with
/// tile origins skewed by `K - KK` in both `J` and `I`.
fn rows_tiled(n: usize, nk: usize, tile: TileDims, mut f: impl FnMut(usize, usize, usize, usize)) {
    let (ti, tj) = (tile.ti, tile.tj);
    let mut jj = 0usize;
    while jj <= n - 2 {
        let mut ii = 0usize;
        while ii <= n - 2 {
            for kk in 0..=nk - 2 {
                for k in [kk + 1, kk] {
                    if !(1..=nk - 2).contains(&k) {
                        continue;
                    }
                    let sh = k - kk; // skew: 1 on the red trip, 0 on black
                    let j_lo = (jj + sh).max(1);
                    let j_hi = (jj + sh + tj - 1).min(n - 2);
                    for j in j_lo..=j_hi {
                        // IStart = II + K - KK, parity-corrected to the
                        // red/black rule; the Fortran `if (IStart.eq.1)
                        // IStart=3` becomes 0 -> 2 in 0-based indexing.
                        let is0 = ii + sh;
                        let mut i = is0 + (kk + j + is0) % 2;
                        if i == 0 {
                            i = 2;
                        }
                        let i_hi = (ii + sh + ti - 1).min(n - 2);
                        if i <= i_hi {
                            f(i, stride2_last(i, i_hi), j, k);
                        }
                    }
                }
            }
            ii += ti;
        }
        jj += tj;
    }
}

/// Walks the update points of `schedule` as stride-2 row segments in
/// **execution order**: `f(i_first, i_last, j, k)` with
/// `i_first..=i_last step 2` all one color. This is the iteration layer
/// of the red-black row engine; [`visit`] is its per-point expansion.
pub fn visit_rows(
    n: usize,
    nk: usize,
    schedule: Schedule,
    f: impl FnMut(usize, usize, usize, usize),
) {
    match schedule {
        Schedule::Naive => rows_naive(n, nk, f),
        Schedule::Fused => rows_fused(n, nk, f),
        Schedule::Tiled(t) => rows_tiled(n, nk, t, f),
    }
}

/// Walks the update points of `schedule` in **execution order**, calling
/// `f(i, j, k)` once per interior point.
///
/// This is the order the dynamic legality cross-check replays (see
/// `crate::crosscheck`): red points must be visited before every adjacent
/// black point for the in-place update to be correct, which is exactly the
/// lexicographic-positivity condition the static certificate proves.
pub fn visit(n: usize, nk: usize, schedule: Schedule, mut f: impl FnMut(usize, usize, usize)) {
    visit_rows(n, nk, schedule, |i0, i1, j, k| {
        let mut i = i0;
        while i <= i1 {
            f(i, j, k);
            i += 2;
        }
    });
}

/// One full red-black iteration in the chosen schedule, updating `a` in
/// place: `A = C1*A + C2*(sum of 6 face neighbours)`.
///
/// Runs on the row engine: each stride-2 row segment is computed into a
/// scratch buffer from an immutable view of the array, then scattered
/// back. Within one segment every read lands on the opposite color (or on
/// the not-yet-written center), so the split is bitwise identical to the
/// per-point in-place update in [`crate::reference::redblack`].
///
/// # Panics
/// Panics unless the `I`/`J` logical extents are equal (the `K` extent may
/// differ — the paper's evaluation uses `N x N x 30` grids).
pub fn sweep(a: &mut Array3<f64>, c1: f64, c2: f64, schedule: Schedule) {
    sweep_with::<RowEngine>(a, c1, c2, schedule);
}

/// [`sweep`] with the execution backend chosen at runtime (`Auto` probes
/// once per process; see [`crate::backend::resolve`]).
pub fn sweep_backend(a: &mut Array3<f64>, c1: f64, c2: f64, schedule: Schedule, sel: ExecBackend) {
    match backend::resolve(sel, RowKernel::RedBlack) {
        Resolved::Row => sweep_with::<RowEngine>(a, c1, c2, schedule),
        Resolved::Lane => sweep_with::<LaneEngine>(a, c1, c2, schedule),
    }
}

/// [`sweep`] generic over the row-segment execution [`Backend`].
pub fn sweep_with<B: Backend>(a: &mut Array3<f64>, c1: f64, c2: f64, schedule: Schedule) {
    let n = a.ni();
    let nk = a.nk();
    assert!(a.nj() == n, "red-black kernel expects square I/J extents");
    let (di, ps) = (a.di(), a.plane_stride());
    let av = a.as_mut_slice();
    let mut scratch = vec![0.0f64; n / 2 + 1];
    visit_rows(n, nk, schedule, |i0, i1, j, k| {
        let lo = j * di + k * ps + i0;
        let m = (i1 - i0) / 2 + 1;
        {
            let src: &[f64] = av;
            B::redblack_row(
                &mut scratch[..m],
                &src[lo..],
                &src[lo - 1..],
                &src[lo - di..],
                &src[lo + 1..],
                &src[lo + di..],
                &src[lo - ps..],
                &src[lo + ps..],
                c1,
                c2,
            );
        }
        rowexec::scatter_stride2(&mut av[lo..], &scratch[..m]);
    });
    if nk >= 2 && n >= 2 {
        rowexec::note_sweep(
            (n as u64 - 2) * (n as u64 - 2) * (nk as u64 - 2),
            FLOPS_PER_POINT,
        );
    }
}

/// Replays the exact address trace of one iteration (array `A` at byte 0,
/// allocated `di x dj x n`). Per updated point the accesses follow the
/// source expression: centre load, the six neighbour loads, centre store.
pub fn trace<S: AccessSink>(
    n: usize,
    nk: usize,
    di: usize,
    dj: usize,
    schedule: Schedule,
    sink: &mut S,
) {
    assert!(di >= n && dj >= n);
    let ps = di * dj;
    visit(n, nk, schedule, |i, j, k| {
        let idx = (i + j * di + k * ps) as i64;
        let at = |off: i64| ((idx + off) * 8) as u64;
        // A(i) then A(i-1): a descending 2-run in source order.
        sink.read_run(at(0), -8, 2);
        sink.read(at(-(di as i64)));
        sink.read(at(1));
        sink.read(at(di as i64));
        sink.read(at(-(ps as i64)));
        sink.read(at(ps as i64));
        sink.write(at(0));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tiling3d_cachesim::CountingSink;
    use tiling3d_grid::fill_random;

    fn grid(n: usize, di: usize, dj: usize, seed: u64) -> Array3<f64> {
        let mut a = Array3::with_padding(n, n, n, di, dj);
        fill_random(&mut a, seed);
        a
    }

    #[test]
    fn every_schedule_updates_each_interior_point_once() {
        let n = 11;
        for sched in [
            Schedule::Naive,
            Schedule::Fused,
            Schedule::Tiled(TileDims::new(4, 3)),
        ] {
            let mut seen = HashSet::new();
            visit(n, n, sched, |i, j, k| {
                assert!(seen.insert((i, j, k)), "{sched:?}: duplicate ({i},{j},{k})");
            });
            assert_eq!(seen.len(), (n - 2).pow(3), "{sched:?}: coverage");
        }
    }

    #[test]
    fn naive_pass_order_is_red_then_black() {
        // First (n-2)^3/2-ish updates must all be red (even Fortran parity
        // = odd 0-based parity sum ... verify via the parity the walker
        // uses: p=0 points have (i+j+k) even in 0-based + formula terms).
        let n = 9;
        let mut phase_one_parity = None;
        let mut count = 0usize;
        visit(n, n, Schedule::Naive, |i, j, k| {
            count += 1;
            let par = (i + j + k) % 2;
            if count == 1 {
                phase_one_parity = Some(par);
            } else if count <= (n - 2).pow(3) / 2 {
                assert_eq!(Some(par), phase_one_parity, "mixed colours in pass one");
            }
        });
    }

    #[test]
    fn fused_matches_naive_bitwise() {
        for n in [8usize, 9, 12, 15] {
            let mut a = grid(n, n, n, 42);
            let mut b = a.clone();
            sweep(&mut a, 0.4, 0.1, Schedule::Naive);
            sweep(&mut b, 0.4, 0.1, Schedule::Fused);
            assert!(a.logical_eq(&b), "n={n}");
        }
    }

    #[test]
    fn tiled_matches_naive_bitwise() {
        for &(n, ti, tj) in &[
            (8usize, 3usize, 3usize),
            (9, 2, 5),
            (12, 4, 4),
            (15, 1, 1),
            (15, 100, 100),
            (13, 5, 2),
        ] {
            let mut a = grid(n, n, n, 7);
            let mut b = a.clone();
            sweep(&mut a, 0.4, 0.1, Schedule::Naive);
            sweep(&mut b, 0.4, 0.1, Schedule::Tiled(TileDims::new(ti, tj)));
            assert!(a.logical_eq(&b), "n={n} tile=({ti},{tj})");
        }
    }

    #[test]
    fn tiled_with_padding_matches_unpadded() {
        let n = 12;
        let mut a = grid(n, n, n, 99);
        let mut b = a.repadded(19, 17);
        sweep(&mut a, 0.3, 0.1, Schedule::Naive);
        sweep(&mut b, 0.3, 0.1, Schedule::Tiled(TileDims::new(5, 3)));
        assert!(a.logical_eq(&b));
    }

    #[test]
    fn red_pass_reads_only_original_blacks() {
        // After only the red half-sweep of the naive schedule, black
        // points are untouched.
        let n = 10;
        let orig = grid(n, n, n, 5);
        let mut a = orig.clone();
        let (di, ps) = (a.di(), a.plane_stride());
        {
            let av = a.as_mut_slice();
            // Red pass only (p = 0).
            for k in 1..=n - 2 {
                for j in 1..=n - 2 {
                    let mut i = 1 + (k + j) % 2;
                    while i <= n - 2 {
                        let idx = i + j * di + k * ps;
                        av[idx] = 0.4 * av[idx]
                            + 0.1
                                * (av[idx - 1]
                                    + av[idx - di]
                                    + av[idx + 1]
                                    + av[idx + di]
                                    + av[idx - ps]
                                    + av[idx + ps]);
                        i += 2;
                    }
                }
            }
        }
        for (i, j, k, v) in orig.iter_logical() {
            let red = (1 + (k + j) % 2) % 2 == i % 2;
            if !red {
                assert_eq!(a.get(i, j, k), v, "black ({i},{j},{k}) was modified");
            }
        }
    }

    #[test]
    fn non_cubic_grid_schedules_agree() {
        let mut a = Array3::with_padding(10, 10, 6, 12, 11);
        fill_random(&mut a, 31);
        let mut b = a.clone();
        let mut c = a.clone();
        sweep(&mut a, 0.4, 0.1, Schedule::Naive);
        sweep(&mut b, 0.4, 0.1, Schedule::Fused);
        sweep(&mut c, 0.4, 0.1, Schedule::Tiled(TileDims::new(3, 4)));
        assert!(a.logical_eq(&b));
        assert!(a.logical_eq(&c));
    }

    #[test]
    fn trace_access_counts() {
        let n = 10;
        let mut c = CountingSink::default();
        trace(n, n, n, n, Schedule::Fused, &mut c);
        let pts = (n as u64 - 2).pow(3);
        assert_eq!(c.reads, 7 * pts);
        assert_eq!(c.writes, pts);
        let mut ct = CountingSink::default();
        trace(n, n, 13, 12, Schedule::Tiled(TileDims::new(3, 4)), &mut ct);
        assert_eq!(ct.reads, 7 * pts);
        assert_eq!(ct.writes, pts);
    }

    #[test]
    fn flops_accounting() {
        assert_eq!(sweep_flops(10, 10), 512 * 8);
        assert_eq!(sweep_flops(10, 6), 8 * 8 * 4 * 8);
    }
}
