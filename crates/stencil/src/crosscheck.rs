//! Dynamic legality cross-check: replays a transformed schedule's visit
//! order and verifies it agrees with what the static certificate promised.
//!
//! The static analyzer ([`tiling3d_core::legality`]) proves legality from
//! distance vectors; this module checks the *executed* order directly, as a
//! second, independent line of defence against a walker whose index
//! arithmetic drifts from the schedule the certificate modelled. Two
//! properties are checked:
//!
//! 1. **Permutation**: the transformed order visits every interior point
//!    exactly once — tiling reorders the iteration space, it must not drop
//!    or duplicate points.
//! 2. **Dependence order** (red-black only): every red point is visited
//!    before each of its six face-adjacent black neighbours. This single
//!    ordering constraint is the dynamic image of *both* certified
//!    dependence families — flow (a black update reads its red neighbours'
//!    new values) and anti (a red update reads its black neighbours'
//!    original values) — so a pass here means the executed permutation is
//!    consistent with the certificate's dependence set.
//!
//! [`Kernel::run_certified`](crate::kernels::Kernel::run_certified) runs
//! these checks in debug builds only; release sweeps pay nothing.

use crate::kernels::Kernel;
use crate::redblack;
use std::collections::HashMap;
use tiling3d_loopnest::{for_each, for_each_tiled, IterSpace, TileDims};

/// The visit order (interior points, execution order) a kernel's sweep
/// follows under the given tile.
pub fn visit_order(
    kernel: Kernel,
    n: usize,
    nk: usize,
    tile: Option<(usize, usize)>,
) -> Vec<(usize, usize, usize)> {
    let mut pts = Vec::with_capacity((n.saturating_sub(2)).pow(2) * nk.saturating_sub(2));
    let push = |i: usize, j: usize, k: usize| pts.push((i, j, k));
    match kernel {
        Kernel::Jacobi | Kernel::Resid => {
            let space = IterSpace::interior(n, n, nk);
            match tile {
                None => for_each(space, push),
                Some((ti, tj)) => for_each_tiled(space, TileDims::new(ti, tj), push),
            }
        }
        Kernel::RedBlack => {
            let sched = match tile {
                None => redblack::Schedule::Naive,
                Some((ti, tj)) => redblack::Schedule::Tiled(TileDims::new(ti, tj)),
            };
            redblack::visit(n, nk, sched, push);
        }
    }
    pts
}

/// Checks that `order` is a permutation of the interior of an
/// `n x n x nk` grid: every interior point exactly once, nothing else.
pub fn check_permutation(
    order: &[(usize, usize, usize)],
    n: usize,
    nk: usize,
) -> Result<(), String> {
    let interior = (n - 2) * (n - 2) * (nk - 2);
    if order.len() != interior {
        return Err(format!(
            "visited {} points, interior has {interior}",
            order.len()
        ));
    }
    let mut seen = vec![false; interior];
    for &(i, j, k) in order {
        if !(1..=n - 2).contains(&i) || !(1..=n - 2).contains(&j) || !(1..=nk - 2).contains(&k) {
            return Err(format!("({i},{j},{k}) is outside the interior"));
        }
        let idx = (i - 1) + (j - 1) * (n - 2) + (k - 1) * (n - 2) * (n - 2);
        if seen[idx] {
            return Err(format!("({i},{j},{k}) visited twice"));
        }
        seen[idx] = true;
    }
    Ok(())
}

/// Checks the red-black dependence order on an executed `order`: every red
/// point (odd 0-based coordinate sum) must be visited before each of its
/// interior face-adjacent black neighbours. One constraint covers both
/// certified dependence families — see the module docs.
pub fn check_redblack_order(order: &[(usize, usize, usize)]) -> Result<(), String> {
    let ts: HashMap<(usize, usize, usize), usize> =
        order.iter().enumerate().map(|(t, &p)| (p, t)).collect();
    for (&(i, j, k), &t_red) in &ts {
        if (i + j + k) % 2 == 0 {
            continue; // black; its constraints are checked from the red side
        }
        let neighbours = [
            (i.wrapping_sub(1), j, k),
            (i + 1, j, k),
            (i, j.wrapping_sub(1), k),
            (i, j + 1, k),
            (i, j, k.wrapping_sub(1)),
            (i, j, k + 1),
        ];
        for q in neighbours {
            if let Some(&t_black) = ts.get(&q) {
                if t_black < t_red {
                    return Err(format!(
                        "black {q:?} at step {t_black} ran before adjacent red \
                         ({i},{j},{k}) at step {t_red}: in-place red-black \
                         dependence violated"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Full dynamic cross-check for a kernel's transformed schedule: replays
/// the visit order and applies every property the certificate implies.
pub fn check_schedule(
    kernel: Kernel,
    n: usize,
    nk: usize,
    tile: Option<(usize, usize)>,
) -> Result<(), String> {
    let order = visit_order(kernel, n, nk, tile);
    check_permutation(&order, n, nk)?;
    if kernel == Kernel::RedBlack {
        check_redblack_order(&order)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_and_tile_passes_the_dynamic_check() {
        for kernel in Kernel::ALL {
            for tile in [None, Some((4, 3)), Some((1, 1)), Some((100, 100))] {
                check_schedule(kernel, 12, 8, tile)
                    .unwrap_or_else(|e| panic!("{} {tile:?}: {e}", kernel.name()));
            }
        }
    }

    #[test]
    fn permutation_check_catches_drops_and_duplicates() {
        let mut order = visit_order(Kernel::Jacobi, 8, 8, Some((3, 3)));
        let dropped = order.pop().unwrap();
        assert!(check_permutation(&order, 8, 8).is_err());
        // Same length, one point replaced by a duplicate of another.
        order.push(order[0]);
        assert!(check_permutation(&order, 8, 8)
            .unwrap_err()
            .contains("twice"));
        *order.last_mut().unwrap() = dropped;
        check_permutation(&order, 8, 8).unwrap();
    }

    #[test]
    fn redblack_check_catches_a_rectangular_tiled_fused_order() {
        // Re-create the *illegal* schedule the analyzer rejects: the fused
        // walk tiled rectangularly over (J, I) with NO tile-origin skew.
        // The dynamic check must catch the same violation the certificate
        // witnesses statically.
        let (n, nk) = (10usize, 10usize);
        let (ti, tj) = (4usize, 4usize);
        let mut order = Vec::new();
        let mut jj = 1usize;
        while jj <= n - 2 {
            let mut ii = 1usize;
            while ii <= n - 2 {
                for kk in 0..=nk - 2 {
                    for k in [kk + 1, kk] {
                        if !(1..=nk - 2).contains(&k) {
                            continue;
                        }
                        let parity = if k == kk + 1 { 0 } else { 1 };
                        for j in jj..=(jj + tj - 1).min(n - 2) {
                            let mut i = ii + (1 + ii + k + j + parity) % 2;
                            while i <= (ii + ti - 1).min(n - 2) {
                                order.push((i, j, k));
                                i += 2;
                            }
                        }
                    }
                }
                ii += ti;
            }
            jj += tj;
        }
        check_permutation(&order, n, nk).unwrap();
        let err = check_redblack_order(&order).unwrap_err();
        assert!(err.contains("dependence violated"), "{err}");
    }

    #[test]
    fn naive_and_fused_redblack_orders_are_dependence_clean() {
        for sched in [redblack::Schedule::Naive, redblack::Schedule::Fused] {
            let mut order = Vec::new();
            redblack::visit(11, 9, sched, |i, j, k| order.push((i, j, k)));
            check_permutation(&order, 11, 9).unwrap();
            check_redblack_order(&order).unwrap();
        }
    }
}
