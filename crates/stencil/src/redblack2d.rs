//! 2D red-black SOR — the Weiß et al. fusion technique the paper's 3D
//! schedule (Fig 12) generalises.
//!
//! "Researchers have shown how to avoid this problem (in the 2D case) by
//! ordering loop iterations so that black points in each column are
//! updated immediately after the red points in the next column": the fused
//! 2D schedule keeps a working set of only a few
//! columns (red of column J+1 reads J..J+2 while black of column J reads
//! J-1..J+1 — four columns in flight), so — matching the paper's Section 1
//! thesis — no tiling is required in 2D; fusion alone restores the reuse. This module provides the naive and fused 2D
//! schedules (compute + trace) and the tests pin both the equivalence and
//! the cache behaviour.

use tiling3d_cachesim::AccessSink;
use tiling3d_grid::Array2;
use tiling3d_loopnest::stride2_last;

use crate::backend::{self, Backend, ExecBackend, LaneEngine, Resolved, RowEngine, RowKernel};
use crate::rowexec;

/// FLOPs per updated point (2 multiplies + 4 adds).
pub const FLOPS_PER_POINT: u64 = 6;

/// 2D schedule: two colour passes, or red/black column-fused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule2D {
    /// All red points, then all black points.
    Naive,
    /// Black points of column `J` updated right after red points of column
    /// `J+1`.
    Fused,
}

fn rows_naive(n: usize, mut f: impl FnMut(usize, usize, usize)) {
    for p in 0..2usize {
        for j in 1..=n - 2 {
            let i0 = 1 + (j + p) % 2;
            if i0 <= n - 2 {
                f(i0, stride2_last(i0, n - 2), j);
            }
        }
    }
}

fn rows_fused(n: usize, mut f: impl FnMut(usize, usize, usize)) {
    for jj in 0..=n - 2 {
        for j in [jj + 1, jj] {
            if !(1..=n - 2).contains(&j) {
                continue;
            }
            let parity = if j == jj + 1 { 0 } else { 1 };
            let i0 = 1 + (j + parity) % 2;
            if i0 <= n - 2 {
                f(i0, stride2_last(i0, n - 2), j);
            }
        }
    }
}

/// Walks `schedule`'s update points as stride-2 row segments in execution
/// order: `f(i_first, i_last, j)`.
pub fn visit_rows(n: usize, schedule: Schedule2D, f: impl FnMut(usize, usize, usize)) {
    match schedule {
        Schedule2D::Naive => rows_naive(n, f),
        Schedule2D::Fused => rows_fused(n, f),
    }
}

/// Per-point expansion of [`visit_rows`], in execution order.
pub fn visit(n: usize, schedule: Schedule2D, mut f: impl FnMut(usize, usize)) {
    visit_rows(n, schedule, |i0, i1, j| {
        let mut i = i0;
        while i <= i1 {
            f(i, j);
            i += 2;
        }
    });
}

/// One full 2D red-black iteration in place:
/// `A = C1*A + C2*(4-point neighbour sum)`.
///
/// Runs on the row engine (scratch-compute then stride-2 scatter);
/// bitwise identical to [`crate::reference::redblack2d`].
///
/// # Panics
/// Panics unless the logical extents are square.
pub fn sweep(a: &mut Array2<f64>, c1: f64, c2: f64, schedule: Schedule2D) {
    sweep_with::<RowEngine>(a, c1, c2, schedule);
}

/// [`sweep`] with the execution backend chosen at runtime.
pub fn sweep_backend(
    a: &mut Array2<f64>,
    c1: f64,
    c2: f64,
    schedule: Schedule2D,
    sel: ExecBackend,
) {
    match backend::resolve(sel, RowKernel::RedBlack2d) {
        Resolved::Row => sweep_with::<RowEngine>(a, c1, c2, schedule),
        Resolved::Lane => sweep_with::<LaneEngine>(a, c1, c2, schedule),
    }
}

/// [`sweep`] generic over the row-segment execution [`Backend`].
pub fn sweep_with<B: Backend>(a: &mut Array2<f64>, c1: f64, c2: f64, schedule: Schedule2D) {
    let n = a.ni();
    assert_eq!(a.nj(), n, "2D red-black expects a square grid");
    let di = a.di();
    let av = a.as_mut_slice();
    let mut scratch = vec![0.0f64; n / 2 + 1];
    visit_rows(n, schedule, |i0, i1, j| {
        let lo = j * di + i0;
        let m = (i1 - i0) / 2 + 1;
        {
            let src: &[f64] = av;
            B::redblack2d_row(
                &mut scratch[..m],
                &src[lo..],
                &src[lo - 1..],
                &src[lo - di..],
                &src[lo + 1..],
                &src[lo + di..],
                c1,
                c2,
            );
        }
        rowexec::scatter_stride2(&mut av[lo..], &scratch[..m]);
    });
    if n >= 2 {
        rowexec::note_sweep(((n - 2) * (n - 2)) as u64, FLOPS_PER_POINT);
    }
}

/// Trace of one iteration (array at byte 0, allocated column length `di`).
pub fn trace<S: AccessSink>(n: usize, di: usize, schedule: Schedule2D, sink: &mut S) {
    assert!(di >= n);
    visit(n, schedule, |i, j| {
        let idx = (i + j * di) as i64;
        let at = |off: i64| ((idx + off) * 8) as u64;
        sink.read(at(0));
        sink.read(at(-1));
        sink.read(at(-(di as i64)));
        sink.read(at(1));
        sink.read(at(di as i64));
        sink.write(at(0));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tiling3d_cachesim::{Cache, CacheConfig};
    use tiling3d_grid::fill_random2;

    #[test]
    fn both_schedules_cover_each_point_once() {
        let n = 13;
        for sched in [Schedule2D::Naive, Schedule2D::Fused] {
            let mut seen = HashSet::new();
            visit(n, sched, |i, j| {
                assert!(seen.insert((i, j)), "{sched:?} dup ({i},{j})");
            });
            assert_eq!(seen.len(), (n - 2) * (n - 2));
        }
    }

    #[test]
    fn fused_matches_naive_bitwise() {
        for n in [8usize, 9, 20, 33] {
            let mut a = Array2::new(n, n);
            fill_random2(&mut a, 41);
            let mut b = a.clone();
            sweep(&mut a, 0.4, 0.15, Schedule2D::Naive);
            sweep(&mut b, 0.4, 0.15, Schedule2D::Fused);
            assert!(a.logical_eq(&b), "n={n}");
        }
    }

    #[test]
    fn padded_grid_same_results() {
        let mut a = Array2::new(16, 16);
        fill_random2(&mut a, 2);
        let mut b = Array2::with_padding(16, 16, 23);
        for j in 0..16 {
            for i in 0..16 {
                b.set(i, j, a.get(i, j));
            }
        }
        sweep(&mut a, 0.3, 0.1, Schedule2D::Fused);
        sweep(&mut b, 0.3, 0.1, Schedule2D::Fused);
        assert!(a.logical_eq(&b));
    }

    #[test]
    fn fusion_restores_read_reuse_in_2d() {
        // Naive: the array is pulled through cache twice per iteration.
        // Fused: once, provided the 4-column working set (red of column
        // J+1 reads J..J+2, black of column J reads J-1..J+1) fits — at
        // N = 400 that is 12.8KB of a 16KB L1.
        let n = 400;
        let rate = |s: Schedule2D| {
            let mut l1 = Cache::new(CacheConfig::ULTRASPARC2_L1);
            trace(n, n, s, &mut l1);
            l1.stats().read_miss_rate_pct()
        };
        let (naive, fused) = (rate(Schedule2D::Naive), rate(Schedule2D::Fused));
        assert!(
            fused < naive * 0.7,
            "fusion should cut 2D read misses substantially: naive {naive:.1}% fused {fused:.1}%"
        );
    }

    #[test]
    fn flops_constant() {
        assert_eq!(FLOPS_PER_POINT, 6);
    }
}
