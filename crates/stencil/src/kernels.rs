//! Unified kernel dispatch for the benchmark harness.
//!
//! The paper evaluates the same six transformations (Table 2) on three
//! kernels; this module packages those kernels behind one enum so the
//! harness can sweep `kernel x transform x problem-size` uniformly:
//! allocate state under a [`tiling3d_core::TransformPlan`] (which fixes the
//! padded dimensions), run timed sweeps, and replay cache traces.

use tiling3d_cachesim::AccessSink;
use tiling3d_core::{
    plan_certified, CacheSpec, CertifiedPlan, IllegalPlan, SweepDiscipline, Transform,
    TransformPlan,
};
use tiling3d_grid::{fill_random, Array3};
use tiling3d_loopnest::{StencilShape, TileDims};

use crate::backend::ExecBackend;
use crate::{jacobi3d, parallel, redblack, resid};

/// How the kernel's arrays are placed in the simulated address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayLayout {
    /// Back-to-back allocation (Fortran `COMMON`-style) — the default the
    /// paper's measurements reflect.
    Consecutive,
    /// Inter-variable padding (Section 3.5): bases staggered so the
    /// arrays' cache offsets are spread `cache/num_arrays` apart.
    Staggered {
        /// Target cache capacity in bytes.
        cache_bytes: u64,
        /// Cache line size in bytes (bases stay line-aligned).
        line_bytes: u64,
    },
}

/// The three evaluation kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// 6-point 3D Jacobi (Fig 3).
    Jacobi,
    /// 3D red-black SOR (Fig 12); untiled = naive schedule, tiled = the
    /// fused + skewed-tiled schedule.
    RedBlack,
    /// 27-point MGRID RESID (Fig 13).
    Resid,
}

/// Owned arrays for one kernel at one problem size / padding.
#[derive(Clone, Debug)]
pub enum KernelState {
    /// Jacobi's output and input arrays.
    Jacobi {
        /// Output array `A`.
        a: Array3<f64>,
        /// Input array `B`.
        b: Array3<f64>,
    },
    /// Red-black's single in-place array.
    RedBlack {
        /// The in-place array `A`.
        a: Array3<f64>,
    },
    /// RESID's residual, solution and right-hand-side arrays.
    Resid {
        /// Output residual `R`.
        r: Array3<f64>,
        /// 27-point input `U`.
        u: Array3<f64>,
        /// Second input `V`.
        v: Array3<f64>,
    },
}

impl KernelState {
    /// The array the kernel writes: Jacobi's `A`, red-black's in-place
    /// `A`, RESID's residual `R`. This is the grid the numerical health
    /// sentinels scan after a sweep.
    pub fn output(&self) -> &Array3<f64> {
        match self {
            KernelState::Jacobi { a, .. } | KernelState::RedBlack { a } => a,
            KernelState::Resid { r, .. } => r,
        }
    }

    /// Mutable access to the output array (see [`KernelState::output`]) —
    /// how the fault-injection harness plants NaN writes.
    pub fn output_mut(&mut self) -> &mut Array3<f64> {
        match self {
            KernelState::Jacobi { a, .. } | KernelState::RedBlack { a } => a,
            KernelState::Resid { r, .. } => r,
        }
    }
}

impl Kernel {
    /// All three kernels in the paper's table order.
    pub const ALL: [Kernel; 3] = [Kernel::Jacobi, Kernel::RedBlack, Kernel::Resid];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Jacobi => "JACOBI",
            Kernel::RedBlack => "REDBLACK",
            Kernel::Resid => "RESID",
        }
    }

    /// The stencil shape tile selection should plan for. Red-black plans
    /// for the *fused* schedule (ATD 4), since that is what gets tiled.
    ///
    /// See also the [`std::str::FromStr`] impl, the one spelling-to-kernel
    /// mapping shared by the CLI and every bench driver.
    pub fn shape(self) -> StencilShape {
        match self {
            Kernel::Jacobi => StencilShape::jacobi3d(),
            Kernel::RedBlack => StencilShape::redblack3d_fused(),
            Kernel::Resid => StencilShape::resid27(),
        }
    }

    /// How this kernel's sweep uses its arrays — fixes the dependence set
    /// its schedules must be certified against. Jacobi and RESID write a
    /// distinct output array (no dependences); red-black updates one array
    /// in place under the fused schedule.
    pub fn discipline(self) -> SweepDiscipline {
        match self {
            Kernel::Jacobi | Kernel::Resid => SweepDiscipline::OutOfPlace,
            Kernel::RedBlack => SweepDiscipline::FusedRedBlack,
        }
    }

    /// Plans `t` for this kernel and certifies the schedule its executors
    /// will run. The only way to obtain the [`CertifiedPlan`] that
    /// [`Kernel::run_certified`] and [`Kernel::trace_certified`] require.
    pub fn plan_certified(
        self,
        t: Transform,
        cache: CacheSpec,
        di: usize,
        dj: usize,
    ) -> Result<CertifiedPlan, IllegalPlan> {
        plan_certified(t, cache, di, dj, &self.shape(), &self.discipline())
    }

    /// FLOPs of one full sweep over an `n x n x nk` problem.
    pub fn sweep_flops(self, n: usize, nk: usize) -> u64 {
        match self {
            Kernel::Jacobi => jacobi3d::sweep_flops(n, n, nk),
            Kernel::RedBlack => redblack::sweep_flops(n, nk),
            Kernel::Resid => resid::sweep_flops(n, n, nk),
        }
    }

    /// Allocates kernel state for an `n x n x nk` problem with the padded
    /// dimensions of `plan`, deterministically initialised from `seed`.
    pub fn make_state(self, n: usize, nk: usize, plan: &TransformPlan, seed: u64) -> KernelState {
        let (di, dj) = (plan.padded_di, plan.padded_dj);
        match self {
            Kernel::Jacobi => {
                let a = Array3::with_padding(n, n, nk, di, dj);
                let mut b = Array3::with_padding(n, n, nk, di, dj);
                fill_random(&mut b, seed);
                KernelState::Jacobi { a, b }
            }
            Kernel::RedBlack => {
                let mut a = Array3::with_padding(n, n, nk, di, dj);
                fill_random(&mut a, seed);
                KernelState::RedBlack { a }
            }
            Kernel::Resid => {
                let r = Array3::with_padding(n, n, nk, di, dj);
                let mut u = Array3::with_padding(n, n, nk, di, dj);
                let mut v = Array3::with_padding(n, n, nk, di, dj);
                fill_random(&mut u, seed);
                fill_random(&mut v, seed ^ 0xABCD);
                KernelState::Resid { r, u, v }
            }
        }
    }

    /// Runs one sweep under the plan's tile (or the original schedule when
    /// the plan is untiled).
    ///
    /// # Panics
    /// Panics if `state` was built for a different kernel.
    pub fn run(self, state: &mut KernelState, tile: Option<(usize, usize)>) {
        self.run_with(state, tile, ExecBackend::Row);
    }

    /// [`Kernel::run`] on the chosen execution backend (see
    /// [`crate::backend`]); results are bitwise identical for every
    /// backend.
    ///
    /// # Panics
    /// Panics if `state` was built for a different kernel.
    pub fn run_with(self, state: &mut KernelState, tile: Option<(usize, usize)>, sel: ExecBackend) {
        let t = tile.map(|(ti, tj)| TileDims::new(ti, tj));
        match (self, state) {
            (Kernel::Jacobi, KernelState::Jacobi { a, b }) => {
                jacobi3d::sweep_backend(a, b, 1.0 / 6.0, t, sel);
            }
            (Kernel::RedBlack, KernelState::RedBlack { a }) => {
                let sched = match t {
                    None => redblack::Schedule::Naive,
                    Some(t) => redblack::Schedule::Tiled(t),
                };
                redblack::sweep_backend(a, 0.4, 0.1, sched, sel);
            }
            (Kernel::Resid, KernelState::Resid { r, u, v }) => {
                resid::sweep_backend(r, u, v, &resid::Coeffs::MGRID_A, t, sel);
            }
            _ => panic!("kernel/state mismatch"),
        }
    }

    /// Runs one sweep across `threads` K-slabs (see [`crate::parallel`]).
    ///
    /// Bitwise identical to [`Kernel::run`] with the same tile for every
    /// thread count; red-black runs its two colour phases under a global
    /// barrier.
    ///
    /// # Panics
    /// Panics if `state` was built for a different kernel or
    /// `threads == 0`.
    pub fn run_parallel(
        self,
        state: &mut KernelState,
        tile: Option<(usize, usize)>,
        threads: usize,
    ) {
        self.run_parallel_with(state, tile, threads, ExecBackend::Row);
    }

    /// [`Kernel::run_parallel`] on the chosen execution backend; every
    /// slab runs its row segments through the same backend, so results
    /// stay bitwise identical for every thread count and backend.
    ///
    /// # Panics
    /// Panics if `state` was built for a different kernel or
    /// `threads == 0`.
    pub fn run_parallel_with(
        self,
        state: &mut KernelState,
        tile: Option<(usize, usize)>,
        threads: usize,
        sel: ExecBackend,
    ) {
        let t = tile.map(|(ti, tj)| TileDims::new(ti, tj));
        match (self, state) {
            (Kernel::Jacobi, KernelState::Jacobi { a, b }) => {
                parallel::jacobi3d_sweep_backend(a, b, 1.0 / 6.0, t, threads, sel);
            }
            (Kernel::RedBlack, KernelState::RedBlack { a }) => {
                parallel::redblack_sweep_backend(a, 0.4, 0.1, t, threads, sel);
            }
            (Kernel::Resid, KernelState::Resid { r, u, v }) => {
                parallel::resid_sweep_backend(r, u, v, &resid::Coeffs::MGRID_A, t, threads, sel);
            }
            _ => panic!("kernel/state mismatch"),
        }
    }

    /// Runs one sweep under a dependence-certified plan.
    ///
    /// In debug builds this first revalidates the certificate and replays
    /// the transformed visit order through the dynamic cross-check
    /// ([`crate::crosscheck`]): the executed permutation must cover every
    /// interior point once and respect the certificate's dependences.
    /// Release builds run the sweep directly — certification is a
    /// plan-time gate, not a per-sweep cost.
    ///
    /// # Panics
    /// Panics if `state` was built for a different kernel, or (debug
    /// builds) if the dynamic cross-check contradicts the certificate.
    pub fn run_certified(self, state: &mut KernelState, plan: &CertifiedPlan) {
        #[cfg(debug_assertions)]
        {
            let a = match state {
                KernelState::Jacobi { a, .. } => &*a,
                KernelState::RedBlack { a } => &*a,
                KernelState::Resid { r, .. } => &*r,
            };
            plan.certificate()
                .revalidate()
                .expect("stored legality certificate no longer validates");
            crate::crosscheck::check_schedule(self, a.ni(), a.nk(), plan.tile())
                .expect("dynamic cross-check contradicts the legality certificate");
        }
        self.run(state, plan.tile());
    }

    /// Replays the cache trace of one sweep under a dependence-certified
    /// plan, using the plan's padded allocation dimensions.
    pub fn trace_certified<S: AccessSink>(
        self,
        n: usize,
        nk: usize,
        plan: &CertifiedPlan,
        sink: &mut S,
    ) {
        let (di, dj) = plan.padded_dims();
        self.trace(n, nk, di, dj, plan.tile(), sink);
    }

    /// Replays the cache trace of one sweep for an `n x n x nk` problem
    /// allocated `di x dj`, tiled or not.
    pub fn trace<S: AccessSink>(
        self,
        n: usize,
        nk: usize,
        di: usize,
        dj: usize,
        tile: Option<(usize, usize)>,
        sink: &mut S,
    ) {
        let _span = if tiling3d_obs::collecting() {
            let s = tiling3d_obs::span(&format!("trace:{}", self.name()));
            s.add("points", (n * n * nk) as u64);
            Some(s)
        } else {
            None
        };
        let t = tile.map(|(ti, tj)| TileDims::new(ti, tj));
        match self {
            Kernel::Jacobi => jacobi3d::trace(n, n, nk, di, dj, t, sink),
            Kernel::RedBlack => {
                let sched = match t {
                    None => redblack::Schedule::Naive,
                    Some(t) => redblack::Schedule::Tiled(t),
                };
                redblack::trace(n, nk, di, dj, sched, sink);
            }
            Kernel::Resid => resid::trace(n, n, nk, di, dj, t, sink),
        }
    }

    /// Number of arrays the kernel touches (for layout planning).
    pub fn num_arrays(self) -> usize {
        match self {
            Kernel::Jacobi => 2,
            Kernel::RedBlack => 1,
            Kernel::Resid => 3,
        }
    }

    /// Like [`Kernel::trace`] but with an explicit inter-array layout —
    /// the Section 3.5 experiment hook. `Consecutive` reproduces plain
    /// Fortran-style allocation; `Staggered` applies inter-variable
    /// padding via `tiling3d_core::intervar::staggered_bases`.
    #[allow(clippy::too_many_arguments)]
    pub fn trace_with_layout<S: AccessSink>(
        self,
        n: usize,
        nk: usize,
        di: usize,
        dj: usize,
        tile: Option<(usize, usize)>,
        layout: ArrayLayout,
        sink: &mut S,
    ) {
        let t = tile.map(|(ti, tj)| TileDims::new(ti, tj));
        let array_bytes = (di * dj * nk * 8) as u64;
        let bases = match layout {
            ArrayLayout::Consecutive => {
                tiling3d_core::intervar::consecutive_bases(self.num_arrays(), array_bytes, 8)
            }
            ArrayLayout::Staggered {
                cache_bytes,
                line_bytes,
            } => tiling3d_core::intervar::staggered_bases(
                self.num_arrays(),
                array_bytes,
                cache_bytes,
                line_bytes,
            ),
        };
        match self {
            Kernel::Jacobi => {
                crate::jacobi3d::trace_at(n, n, nk, di, dj, t, bases[0], bases[1], sink);
            }
            Kernel::RedBlack => {
                let sched = match t {
                    None => redblack::Schedule::Naive,
                    Some(t) => redblack::Schedule::Tiled(t),
                };
                redblack::trace(n, nk, di, dj, sched, sink);
            }
            Kernel::Resid => {
                crate::resid::trace_at(n, n, nk, di, dj, t, [bases[0], bases[1], bases[2]], sink);
            }
        }
    }

    /// Accesses (loads + stores) issued per interior point — used for
    /// cross-checking simulated access totals.
    pub fn accesses_per_point(self) -> u64 {
        match self {
            Kernel::Jacobi => 7,   // 6 loads + 1 store
            Kernel::RedBlack => 8, // 7 loads + 1 store
            Kernel::Resid => 29,   // 27 U + 1 V loads + 1 store
        }
    }
}

impl std::str::FromStr for Kernel {
    type Err = String;

    /// Parses a kernel name, case-insensitively, accepting the paper's
    /// table spellings plus the aliases the drivers have historically
    /// taken (`rb`, `red-black`, `mgrid`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "jacobi" => Ok(Kernel::Jacobi),
            "redblack" | "red-black" | "rb" => Ok(Kernel::RedBlack),
            "resid" | "mgrid" => Ok(Kernel::Resid),
            other => Err(format!(
                "unknown kernel '{other}' (expected jacobi, redblack, or resid)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiling3d_cachesim::CountingSink;
    use tiling3d_core::{plan, CacheSpec, Transform};

    #[test]
    fn kernel_from_str_round_trips_every_variant() {
        for k in Kernel::ALL {
            assert_eq!(k.name().parse::<Kernel>().unwrap(), k);
            assert_eq!(k.name().to_ascii_lowercase().parse::<Kernel>().unwrap(), k);
        }
        for (alias, want) in [
            ("rb", Kernel::RedBlack),
            ("red-black", Kernel::RedBlack),
            ("mgrid", Kernel::Resid),
        ] {
            assert_eq!(alias.parse::<Kernel>().unwrap(), want);
        }
        assert!("sor".parse::<Kernel>().is_err());
    }

    #[test]
    fn state_and_run_work_for_every_kernel_and_transform() {
        let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
        for kernel in Kernel::ALL {
            let shape = kernel.shape();
            for t in Transform::ALL {
                let p = plan(t, cache, 40, 40, &shape);
                let mut st = kernel.make_state(40, 12, &p, 1);
                kernel.run(&mut st, p.tile);
            }
        }
    }

    #[test]
    fn tiled_and_untiled_runs_agree_for_every_kernel() {
        let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
        for kernel in Kernel::ALL {
            let shape = kernel.shape();
            let orig = plan(Transform::Orig, cache, 30, 30, &shape);
            let tiled = plan(Transform::GcdPad, cache, 30, 30, &shape);
            let mut s1 = kernel.make_state(30, 10, &orig, 9);
            let mut s2 = kernel.make_state(30, 10, &tiled, 9);
            kernel.run(&mut s1, orig.tile);
            kernel.run(&mut s2, tiled.tile);
            let out = |s: &KernelState| match s {
                KernelState::Jacobi { a, .. } => a.clone(),
                KernelState::RedBlack { a } => a.clone(),
                KernelState::Resid { r, .. } => r.clone(),
            };
            assert!(out(&s1).logical_eq(&out(&s2)), "{}", kernel.name());
        }
    }

    #[test]
    fn trace_volume_matches_accesses_per_point() {
        for kernel in Kernel::ALL {
            let mut c = CountingSink::default();
            kernel.trace(12, 8, 14, 13, Some((5, 3)), &mut c);
            let pts = 10u64 * 10 * 6;
            assert_eq!(
                c.reads + c.writes,
                kernel.accesses_per_point() * pts,
                "{}",
                kernel.name()
            );
        }
    }

    #[test]
    fn layouts_change_addresses_not_volume() {
        for kernel in Kernel::ALL {
            let mut a = CountingSink::default();
            let mut b = CountingSink::default();
            kernel.trace_with_layout(14, 8, 14, 14, None, ArrayLayout::Consecutive, &mut a);
            kernel.trace_with_layout(
                14,
                8,
                14,
                14,
                None,
                ArrayLayout::Staggered {
                    cache_bytes: 16 * 1024,
                    line_bytes: 32,
                },
                &mut b,
            );
            assert_eq!(a.reads, b.reads, "{}", kernel.name());
            assert_eq!(a.writes, b.writes, "{}", kernel.name());
        }
    }

    #[test]
    fn consecutive_layout_matches_plain_trace() {
        use tiling3d_cachesim::Hierarchy;
        for kernel in Kernel::ALL {
            let mut h1 = Hierarchy::ultrasparc2();
            kernel.trace(30, 10, 32, 31, Some((5, 4)), &mut h1);
            let mut h2 = Hierarchy::ultrasparc2();
            kernel.trace_with_layout(
                30,
                10,
                32,
                31,
                Some((5, 4)),
                ArrayLayout::Consecutive,
                &mut h2,
            );
            assert_eq!(h1.l1_stats(), h2.l1_stats(), "{}", kernel.name());
        }
    }

    #[test]
    fn certified_runs_match_uncertified_for_every_kernel_and_transform() {
        let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
        for kernel in Kernel::ALL {
            for t in Transform::ALL {
                let cp = kernel
                    .plan_certified(t, cache, 30, 30)
                    .unwrap_or_else(|e| panic!("{} {t:?}: {e}", kernel.name()));
                let mut s1 = kernel.make_state(30, 10, cp.plan(), 3);
                let mut s2 = s1.clone();
                kernel.run_certified(&mut s1, &cp);
                kernel.run(&mut s2, cp.tile());
                let out = |s: &KernelState| match s {
                    KernelState::Jacobi { a, .. } => a.clone(),
                    KernelState::RedBlack { a } => a.clone(),
                    KernelState::Resid { r, .. } => r.clone(),
                };
                assert!(out(&s1).logical_eq(&out(&s2)), "{} {t:?}", kernel.name());
            }
        }
    }

    #[test]
    fn certified_trace_matches_uncertified_trace() {
        let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
        for kernel in Kernel::ALL {
            let cp = kernel
                .plan_certified(Transform::GcdPad, cache, 25, 25)
                .unwrap();
            let mut c1 = CountingSink::default();
            kernel.trace_certified(25, 9, &cp, &mut c1);
            let (di, dj) = cp.padded_dims();
            let mut c2 = CountingSink::default();
            kernel.trace(25, 9, di, dj, cp.tile(), &mut c2);
            assert_eq!((c1.reads, c1.writes), (c2.reads, c2.writes));
        }
    }

    #[test]
    fn names_and_flops() {
        assert_eq!(Kernel::Jacobi.name(), "JACOBI");
        assert!(Kernel::Resid.sweep_flops(10, 10) > Kernel::Jacobi.sweep_flops(10, 10));
    }
}
