//! The "realistic stencil code" pattern of Fig 5: a time-step loop around
//! **multiple loop nests** (compute + copy-back).
//!
//! ```text
//! do T = 1, time
//!   do K,J,I: A(I,J,K) = stencil(B)
//!   do K,J,I: B(I,J,K) = A(I,J,K)
//! ```
//!
//! This is the program shape of TOMCATV/SWIM/APPBT/APPSP, and the reason
//! the paper dismisses simple time-skewing: "simple skewing of tiles is
//! not possible with multiple loop nests". The paper's transformation
//! applies *inside* each sweep instead — this module runs whole time-step
//! iterations with the stencil nest optionally tiled, for both computation
//! and cache tracing.

use tiling3d_cachesim::AccessSink;
use tiling3d_grid::Array3;
use tiling3d_loopnest::{for_each_rows, IterSpace, TileDims};

use crate::backend::ExecBackend;
use crate::jacobi3d;

/// FLOPs of one full time step (stencil sweep; the copy-back is pure data
/// movement).
pub fn step_flops(ni: usize, nj: usize, nk: usize) -> u64 {
    jacobi3d::sweep_flops(ni, nj, nk)
}

/// Runs `steps` time-step iterations of the Fig 5 "realistic" pattern:
/// tiled (or not) Jacobi sweep `A = f(B)` followed by the copy-back nest
/// `B = A` over the interior.
///
/// # Panics
/// Panics if extents mismatch.
pub fn run(a: &mut Array3<f64>, b: &mut Array3<f64>, c: f64, tile: Option<TileDims>, steps: usize) {
    for _ in 0..steps {
        match tile {
            None => jacobi3d::sweep(a, b, c),
            Some(t) => jacobi3d::sweep_tiled(a, b, c, t),
        }
        copy_back(b, a);
    }
}

/// [`run`] with the stencil nest executed on the chosen backend (the
/// copy-back nest is pure data movement and backend-independent).
pub fn run_backend(
    a: &mut Array3<f64>,
    b: &mut Array3<f64>,
    c: f64,
    tile: Option<TileDims>,
    steps: usize,
    sel: ExecBackend,
) {
    for _ in 0..steps {
        jacobi3d::sweep_backend(a, b, c, tile, sel);
        copy_back(b, a);
    }
}

/// The second nest of Fig 5: `B(I,J,K) = A(I,J,K)` over the interior.
///
/// Row-segment form: each interior row is one contiguous `copy_from_slice`.
pub fn copy_back(b: &mut Array3<f64>, a: &Array3<f64>) {
    assert_eq!((a.di(), a.dj(), a.nk()), (b.di(), b.dj(), b.nk()));
    let (di, ps) = (a.di(), a.plane_stride());
    let space = IterSpace::interior(a.ni(), a.nj(), a.nk());
    let av = a.as_slice();
    let bv = b.as_mut_slice();
    for_each_rows(space, |i0, i1, j, k| {
        let lo = j * di + k * ps + i0;
        let len = i1 - i0 + 1;
        bv[lo..lo + len].copy_from_slice(&av[lo..lo + len]);
    });
}

/// Replays the trace of `steps` full time steps (stencil nest + copy-back
/// nest, `A` at byte 0 and `B` immediately after, as in
/// [`crate::jacobi3d::trace`]).
///
/// The copy-back nest is emitted row-granular, matching [`copy_back`]'s
/// `copy_from_slice` rows: one batched [`AccessSink::read_run`] over the
/// `A` row followed by one batched [`AccessSink::write_run`] over the `B`
/// row, so a full-resolution simulation probes each touched line once per
/// row instead of once per element.
#[allow(clippy::too_many_arguments)]
pub fn trace<S: AccessSink>(
    ni: usize,
    nj: usize,
    nk: usize,
    di: usize,
    dj: usize,
    tile: Option<TileDims>,
    steps: usize,
    sink: &mut S,
) {
    let ps = di * dj;
    let a_base = 0u64;
    let b_base = (ps * nk * 8) as u64;
    let space = IterSpace::interior(ni, nj, nk);
    for _ in 0..steps {
        jacobi3d::trace(ni, nj, nk, di, dj, tile, sink);
        for_each_rows(space, |i0, i1, j, k| {
            let idx = (i0 + j * di + k * ps) as u64 * 8;
            let len = i1 - i0 + 1;
            sink.read_run(a_base + idx, 8, len);
            sink.write_run(b_base + idx, 8, len);
        });
    }
}

/// The alternative "pointer swap" implementation of the same time loop
/// (no copy-back nest — the roles of A and B alternate). Provided to show
/// the two formulations compute identical fields.
pub fn run_swapped(
    a: &mut Array3<f64>,
    b: &mut Array3<f64>,
    c: f64,
    tile: Option<TileDims>,
    steps: usize,
) {
    for s in 0..steps {
        let (dst, src) = if s % 2 == 0 {
            (&mut *a, &*b)
        } else {
            (&mut *b, &*a)
        };
        match tile {
            None => jacobi3d::sweep(dst, src, c),
            Some(t) => jacobi3d::sweep_tiled(dst, src, c, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiling3d_cachesim::CountingSink;
    use tiling3d_grid::fill_random;

    fn pair(n: usize) -> (Array3<f64>, Array3<f64>) {
        let a = Array3::new(n, n, n);
        let mut b = Array3::new(n, n, n);
        fill_random(&mut b, 17);
        (a, b)
    }

    #[test]
    fn tiled_time_loop_matches_untiled() {
        let (mut a1, mut b1) = pair(12);
        let (mut a2, mut b2) = (a1.clone(), b1.clone());
        run(&mut a1, &mut b1, 1.0 / 6.0, None, 4);
        run(&mut a2, &mut b2, 1.0 / 6.0, Some(TileDims::new(3, 5)), 4);
        assert!(a1.logical_eq(&a2));
        assert!(b1.logical_eq(&b2));
    }

    #[test]
    fn copy_back_version_matches_swap_version() {
        // After an even number of steps the swap version's `b` holds the
        // same field as the copy-back version's `b` on the interior;
        // boundaries differ (copy-back never touches them), so compare
        // interiors only.
        let n = 10;
        let (mut a1, mut b1) = pair(n);
        let mut b2 = b1.clone();
        // The swap version needs A's *boundary* to match B's (the copy-back
        // version never reads A's boundary, the swap version does once the
        // roles flip).
        let mut a2 = b1.clone();
        run(&mut a1, &mut b1, 0.25, None, 2);
        run_swapped(&mut a2, &mut b2, 0.25, None, 2);
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    assert_eq!(b1.get(i, j, k).to_bits(), b2.get(i, j, k).to_bits());
                }
            }
        }
    }

    #[test]
    fn trace_counts_both_nests() {
        let n = 8;
        let mut c = CountingSink::default();
        trace(n, n, n, n, n, None, 2, &mut c);
        let pts = (n as u64 - 2).pow(3);
        // Per step: stencil (6 reads + 1 write) + copy (1 read + 1 write).
        assert_eq!(c.reads, 2 * (6 + 1) * pts);
        assert_eq!(c.writes, 2 * 2 * pts);
    }

    #[test]
    fn copy_back_copies_interior_only() {
        let n = 6;
        let mut a = Array3::new(n, n, n);
        a.fill_with(|i, j, k| (i + 10 * j + 100 * k) as f64);
        let mut b = Array3::new(n, n, n);
        b.fill(-1.0);
        copy_back(&mut b, &a);
        assert_eq!(b.get(2, 3, 4), a.get(2, 3, 4));
        assert_eq!(b.get(0, 3, 4), -1.0); // boundary untouched
    }
}
