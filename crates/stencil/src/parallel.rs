//! Scoped-thread parallel stencil sweeps (K-slab decomposition).
//!
//! The paper's transformations are single-thread cache optimizations, but a
//! production stencil library must compose them with thread parallelism.
//! The natural decomposition for the `JJ/II/K/J/I` tiled schedule is by
//! **K-slabs of the output array**: Jacobi and RESID write one array while
//! reading others, so giving each thread a disjoint span of output planes
//! is race-free by construction (Rust's borrow checker enforces it via
//! `split_at_mut`-style slab slices).
//!
//! Each thread runs the *tiled* schedule inside its slab, so per-thread
//! cache behaviour matches the sequential analysis — tiling and
//! parallelism compose rather than compete. Results are bitwise identical
//! to the sequential sweeps (verified by tests): each output element is
//! computed by exactly one thread from read-only inputs.

use std::thread;

use tiling3d_grid::Array3;
use tiling3d_loopnest::{for_each_tiled, IterSpace, TileDims};

/// Partitions the interior `K` range `1..=nk-2` into at most `threads`
/// contiguous chunks of near-equal size.
fn k_chunks(nk: usize, threads: usize) -> Vec<(usize, usize)> {
    assert!(threads > 0, "need at least one thread");
    let lo = 1usize;
    let hi = nk - 2;
    let total = hi - lo + 1;
    let t = threads.min(total);
    let base = total / t;
    let extra = total % t;
    let mut out = Vec::with_capacity(t);
    let mut start = lo;
    for idx in 0..t {
        let len = base + usize::from(idx < extra);
        out.push((start, start + len - 1));
        start += len;
    }
    out
}

/// Parallel (optionally tiled) 3D Jacobi sweep across `threads` K-slabs.
///
/// Bitwise identical to `jacobi3d::sweep` / `jacobi3d::sweep_tiled`.
///
/// # Panics
/// Panics if extents mismatch or `threads == 0`.
pub fn jacobi3d_sweep(
    a: &mut Array3<f64>,
    b: &Array3<f64>,
    c: f64,
    tile: Option<TileDims>,
    threads: usize,
) {
    assert_eq!(
        (a.ni(), a.nj(), a.nk(), a.di(), a.dj()),
        (b.ni(), b.nj(), b.nk(), b.di(), b.dj())
    );
    let (ni, nj, nk) = (a.ni(), a.nj(), a.nk());
    let (di, ps) = (a.di(), a.plane_stride());
    let chunks = k_chunks(nk, threads);
    let bv = b.as_slice();

    // Slice the output into per-chunk mutable slabs covering whole planes.
    let mut rest = a.as_mut_slice();
    let mut consumed = 0usize;
    let mut slabs = Vec::with_capacity(chunks.len());
    for &(k0, k1) in &chunks {
        // Slab spans plane k0 .. k1 inclusive.
        let begin = k0 * ps;
        let end = (k1 + 1) * ps;
        let (_, tail) = rest.split_at_mut(begin - consumed);
        let (slab, tail) = tail.split_at_mut(end - begin);
        rest = tail;
        consumed = end;
        slabs.push((k0, k1, slab));
    }

    thread::scope(|scope| {
        for (k0, k1, slab) in slabs {
            scope.spawn(move || {
                let space = IterSpace {
                    lo: (1, 1, k0),
                    hi: (ni - 2, nj - 2, k1),
                };
                let base = k0 * ps; // slab-local offset correction
                let body = |i: usize, j: usize, k: usize| {
                    let idx = i + j * di + k * ps;
                    slab[idx - base] = c
                        * (bv[idx - 1]
                            + bv[idx + 1]
                            + bv[idx - di]
                            + bv[idx + di]
                            + bv[idx - ps]
                            + bv[idx + ps]);
                };
                match tile {
                    None => tiling3d_loopnest::for_each(space, body),
                    Some(t) => for_each_tiled(space, t, body),
                }
            });
        }
    });
}

/// Parallel (optionally tiled) RESID sweep across `threads` K-slabs.
///
/// Bitwise identical to `resid::sweep` with the same tile.
///
/// # Panics
/// Panics if extents mismatch or `threads == 0`.
pub fn resid_sweep(
    r: &mut Array3<f64>,
    u: &Array3<f64>,
    v: &Array3<f64>,
    coeffs: &crate::resid::Coeffs,
    tile: Option<TileDims>,
    threads: usize,
) {
    assert_eq!((r.di(), r.dj(), r.nk()), (u.di(), u.dj(), u.nk()));
    assert_eq!((u.di(), u.dj(), u.nk()), (v.di(), v.dj(), v.nk()));
    let (ni, nj, nk) = (r.ni(), r.nj(), r.nk());
    let (di, ps) = (r.di(), r.plane_stride());
    let chunks = k_chunks(nk, threads);
    let (uv, vv) = (u.as_slice(), v.as_slice());
    let coeffs = *coeffs;

    let mut rest = r.as_mut_slice();
    let mut consumed = 0usize;
    let mut slabs = Vec::with_capacity(chunks.len());
    for &(k0, k1) in &chunks {
        let begin = k0 * ps;
        let end = (k1 + 1) * ps;
        let (_, tail) = rest.split_at_mut(begin - consumed);
        let (slab, tail) = tail.split_at_mut(end - begin);
        rest = tail;
        consumed = end;
        slabs.push((k0, k1, slab));
    }

    thread::scope(|scope| {
        for (k0, k1, slab) in slabs {
            scope.spawn(move || {
                let space = IterSpace {
                    lo: (1, 1, k0),
                    hi: (ni - 2, nj - 2, k1),
                };
                let base = k0 * ps;
                let (dii, psi) = (di as i64, ps as i64);
                let body = |i: usize, j: usize, k: usize| {
                    let idx = i + j * di + k * ps;
                    let at = |off: i64| uv[(idx as i64 + off) as usize];
                    let mut s1 = 0.0;
                    for o in [-1i64, 1, -dii, dii, -psi, psi] {
                        s1 += at(o);
                    }
                    let mut s2 = 0.0;
                    for o in [
                        -1 - dii,
                        1 - dii,
                        -1 + dii,
                        1 + dii,
                        -dii - psi,
                        dii - psi,
                        -dii + psi,
                        dii + psi,
                        -1 - psi,
                        -1 + psi,
                        1 - psi,
                        1 + psi,
                    ] {
                        s2 += at(o);
                    }
                    let mut s3 = 0.0;
                    for o in [
                        -1 - dii - psi,
                        1 - dii - psi,
                        -1 + dii - psi,
                        1 + dii - psi,
                        -1 - dii + psi,
                        1 - dii + psi,
                        -1 + dii + psi,
                        1 + dii + psi,
                    ] {
                        s3 += at(o);
                    }
                    slab[idx - base] = vv[idx]
                        - coeffs.a0 * uv[idx]
                        - coeffs.a1 * s1
                        - coeffs.a2 * s2
                        - coeffs.a3 * s3;
                };
                match tile {
                    None => tiling3d_loopnest::for_each(space, body),
                    Some(t) => for_each_tiled(space, t, body),
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resid::Coeffs;
    use tiling3d_grid::fill_random;

    #[test]
    fn k_chunks_cover_the_interior_disjointly() {
        for nk in [3usize, 4, 10, 31] {
            for t in [1usize, 2, 3, 8, 64] {
                let chunks = k_chunks(nk, t);
                let mut expect = 1usize;
                for &(lo, hi) in &chunks {
                    assert_eq!(lo, expect);
                    assert!(hi >= lo);
                    expect = hi + 1;
                }
                assert_eq!(expect, nk - 1, "nk={nk} t={t}");
                assert!(chunks.len() <= t);
            }
        }
    }

    #[test]
    fn parallel_jacobi_matches_sequential_bitwise() {
        let n = 24;
        let mut b = Array3::with_padding(n, n, n, 29, 27);
        fill_random(&mut b, 77);
        let mut seq = Array3::with_padding(n, n, n, 29, 27);
        crate::jacobi3d::sweep(&mut seq, &b, 1.0 / 6.0);
        for threads in [1usize, 2, 3, 7] {
            let mut par = Array3::with_padding(n, n, n, 29, 27);
            jacobi3d_sweep(&mut par, &b, 1.0 / 6.0, None, threads);
            assert!(seq.logical_eq(&par), "threads={threads}");
        }
    }

    #[test]
    fn parallel_tiled_jacobi_matches_sequential() {
        let n = 20;
        let mut b = Array3::new(n, n, n);
        fill_random(&mut b, 5);
        let mut seq = Array3::new(n, n, n);
        crate::jacobi3d::sweep(&mut seq, &b, 0.5);
        let mut par = Array3::new(n, n, n);
        jacobi3d_sweep(&mut par, &b, 0.5, Some(TileDims::new(5, 4)), 4);
        assert!(seq.logical_eq(&par));
    }

    #[test]
    fn parallel_resid_matches_sequential_bitwise() {
        let n = 18;
        let mut u = Array3::with_padding(n, n, n, 21, 19);
        let mut v = u.clone();
        fill_random(&mut u, 8);
        fill_random(&mut v, 9);
        let mut seq = Array3::with_padding(n, n, n, 21, 19);
        crate::resid::sweep(&mut seq, &u, &v, &Coeffs::MGRID_A, None);
        for threads in [1usize, 3, 5] {
            let mut par = Array3::with_padding(n, n, n, 21, 19);
            resid_sweep(
                &mut par,
                &u,
                &v,
                &Coeffs::MGRID_A,
                Some(TileDims::new(4, 4)),
                threads,
            );
            assert!(seq.logical_eq(&par), "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_planes_is_fine() {
        let n = 5;
        let mut b = Array3::new(n, n, n);
        fill_random(&mut b, 2);
        let mut seq = Array3::new(n, n, n);
        crate::jacobi3d::sweep(&mut seq, &b, 1.0);
        let mut par = Array3::new(n, n, n);
        jacobi3d_sweep(&mut par, &b, 1.0, None, 64);
        assert!(seq.logical_eq(&par));
    }
}
