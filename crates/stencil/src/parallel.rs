//! Scoped-thread parallel stencil sweeps (K-slab decomposition).
//!
//! The paper's transformations are single-thread cache optimizations, but a
//! production stencil library must compose them with thread parallelism.
//! The natural decomposition for the `JJ/II/K/J/I` tiled schedule is by
//! **K-slabs of the output array**: Jacobi and RESID write one array while
//! reading others, so giving each thread a disjoint span of output planes
//! is race-free by construction (Rust's borrow checker enforces it via
//! `split_at_mut`-style slab slices).
//!
//! Red-black SOR updates in place, so it additionally needs the two-phase
//! **colour barrier**: all red points (globally) before any black point.
//! Within one colour pass every read is either an opposite-colour
//! neighbour (untouched during the pass) or the point's own pre-write
//! centre value, so the K-slab split stays race-free once each *interface*
//! between adjacent slabs gets a pre-pass snapshot; the outermost planes
//! are never written and are read live, and a single-slab partition runs
//! inline with no snapshots or spawns at all (see [`redblack_sweep`] and
//! DESIGN.md §12 for the full argument).
//!
//! Each thread runs the *tiled* schedule inside its slab on the row-segment
//! engine ([`crate::rowexec`]), so per-thread cache behaviour and inner-loop
//! code match the sequential analysis — tiling, vectorization and
//! parallelism compose rather than compete. Results are bitwise identical
//! to the sequential sweeps for every thread count (verified by tests).

use std::thread;

use tiling3d_grid::Array3;
use tiling3d_loopnest::{
    for_each_rows, for_each_tiled_rows, stride2_clip, stride2_last, IterSpace, TileDims,
};

use crate::backend::{self, Backend, ExecBackend, LaneEngine, Resolved, RowEngine, RowKernel};
use crate::{jacobi3d, redblack, resid, rowexec};

/// Partitions the interior `K` range `1..=nk-2` into at most `threads`
/// contiguous chunks of near-equal size.
///
/// Degenerate grids (`nk < 3`) have no interior planes and yield an empty
/// partition; callers treat that as a no-op sweep.
///
/// # Panics
/// Panics if `threads == 0`.
fn k_chunks(nk: usize, threads: usize) -> Vec<(usize, usize)> {
    assert!(threads > 0, "need at least one thread");
    if nk < 3 {
        return Vec::new();
    }
    let lo = 1usize;
    let hi = nk - 2;
    let total = hi - lo + 1;
    let t = threads.min(total);
    let base = total / t;
    let extra = total % t;
    let mut out = Vec::with_capacity(t);
    let mut start = lo;
    for idx in 0..t {
        let len = base + usize::from(idx < extra);
        out.push((start, start + len - 1));
        start += len;
    }
    out
}

/// Splits `rest` (a whole array slice) into one mutable slab per chunk,
/// each covering planes `k0..=k1` (plane stride `ps`).
fn split_slabs<'a>(
    mut rest: &'a mut [f64],
    chunks: &[(usize, usize)],
    ps: usize,
) -> Vec<(usize, usize, &'a mut [f64])> {
    let mut consumed = 0usize;
    let mut slabs = Vec::with_capacity(chunks.len());
    for &(k0, k1) in chunks {
        let begin = k0 * ps;
        let end = (k1 + 1) * ps;
        let (_, tail) = rest.split_at_mut(begin - consumed);
        let (slab, tail) = tail.split_at_mut(end - begin);
        rest = tail;
        consumed = end;
        slabs.push((k0, k1, slab));
    }
    slabs
}

/// Parallel (optionally tiled) 3D Jacobi sweep across `threads` K-slabs.
///
/// Bitwise identical to `jacobi3d::sweep` / `jacobi3d::sweep_tiled` for
/// every thread count. Degenerate grids (any extent `< 3`) are a no-op.
///
/// # Panics
/// Panics if extents mismatch or `threads == 0`.
pub fn jacobi3d_sweep(
    a: &mut Array3<f64>,
    b: &Array3<f64>,
    c: f64,
    tile: Option<TileDims>,
    threads: usize,
) {
    jacobi3d_sweep_with::<RowEngine>(a, b, c, tile, threads);
}

/// [`jacobi3d_sweep`] with the execution backend chosen at runtime.
pub fn jacobi3d_sweep_backend(
    a: &mut Array3<f64>,
    b: &Array3<f64>,
    c: f64,
    tile: Option<TileDims>,
    threads: usize,
    sel: ExecBackend,
) {
    match backend::resolve(sel, RowKernel::Jacobi3d) {
        Resolved::Row => jacobi3d_sweep_with::<RowEngine>(a, b, c, tile, threads),
        Resolved::Lane => jacobi3d_sweep_with::<LaneEngine>(a, b, c, tile, threads),
    }
}

/// [`jacobi3d_sweep`] generic over the row-segment execution [`Backend`].
pub fn jacobi3d_sweep_with<B: Backend>(
    a: &mut Array3<f64>,
    b: &Array3<f64>,
    c: f64,
    tile: Option<TileDims>,
    threads: usize,
) {
    assert_eq!(
        (a.ni(), a.nj(), a.nk(), a.di(), a.dj()),
        (b.ni(), b.nj(), b.nk(), b.di(), b.dj())
    );
    let (ni, nj, nk) = (a.ni(), a.nj(), a.nk());
    let (di, ps) = (a.di(), a.plane_stride());
    let chunks = k_chunks(nk, threads);
    if chunks.is_empty() || ni < 3 || nj < 3 {
        return;
    }
    let bv = b.as_slice();
    let slabs = split_slabs(a.as_mut_slice(), &chunks, ps);

    thread::scope(|scope| {
        for (k0, k1, slab) in slabs {
            scope.spawn(move || {
                let space = IterSpace {
                    lo: (1, 1, k0),
                    hi: (ni - 2, nj - 2, k1),
                };
                let base = k0 * ps; // slab-local offset correction
                let row = |i0: usize, i1: usize, j: usize, k: usize| {
                    let lo = j * di + k * ps + i0;
                    let len = i1 - i0 + 1;
                    B::jacobi3d_row(
                        &mut slab[lo - base..lo - base + len],
                        &bv[lo - 1..],
                        &bv[lo + 1..],
                        &bv[lo - di..],
                        &bv[lo + di..],
                        &bv[lo - ps..],
                        &bv[lo + ps..],
                        c,
                    );
                };
                match tile {
                    None => for_each_rows(space, row),
                    Some(t) => for_each_tiled_rows(space, t, row),
                }
            });
        }
    });
    rowexec::note_sweep(
        IterSpace::interior(ni, nj, nk).points(),
        jacobi3d::FLOPS_PER_POINT,
    );
}

/// Parallel (optionally tiled) RESID sweep across `threads` K-slabs.
///
/// Bitwise identical to `resid::sweep` with the same tile, for every
/// thread count. Degenerate grids are a no-op.
///
/// # Panics
/// Panics if extents mismatch or `threads == 0`.
pub fn resid_sweep(
    r: &mut Array3<f64>,
    u: &Array3<f64>,
    v: &Array3<f64>,
    coeffs: &resid::Coeffs,
    tile: Option<TileDims>,
    threads: usize,
) {
    resid_sweep_with::<RowEngine>(r, u, v, coeffs, tile, threads);
}

/// [`resid_sweep`] with the execution backend chosen at runtime.
pub fn resid_sweep_backend(
    r: &mut Array3<f64>,
    u: &Array3<f64>,
    v: &Array3<f64>,
    coeffs: &resid::Coeffs,
    tile: Option<TileDims>,
    threads: usize,
    sel: ExecBackend,
) {
    match backend::resolve(sel, RowKernel::Resid) {
        Resolved::Row => resid_sweep_with::<RowEngine>(r, u, v, coeffs, tile, threads),
        Resolved::Lane => resid_sweep_with::<LaneEngine>(r, u, v, coeffs, tile, threads),
    }
}

/// [`resid_sweep`] generic over the row-segment execution [`Backend`].
pub fn resid_sweep_with<B: Backend>(
    r: &mut Array3<f64>,
    u: &Array3<f64>,
    v: &Array3<f64>,
    coeffs: &resid::Coeffs,
    tile: Option<TileDims>,
    threads: usize,
) {
    assert_eq!((r.di(), r.dj(), r.nk()), (u.di(), u.dj(), u.nk()));
    assert_eq!((u.di(), u.dj(), u.nk()), (v.di(), v.dj(), v.nk()));
    let (ni, nj, nk) = (r.ni(), r.nj(), r.nk());
    let (di, ps) = (r.di(), r.plane_stride());
    let chunks = k_chunks(nk, threads);
    if chunks.is_empty() || ni < 3 || nj < 3 {
        return;
    }
    let (uv, vv) = (u.as_slice(), v.as_slice());
    let coeffs = *coeffs;
    let slabs = split_slabs(r.as_mut_slice(), &chunks, ps);

    thread::scope(|scope| {
        for (k0, k1, slab) in slabs {
            scope.spawn(move || {
                let space = IterSpace {
                    lo: (1, 1, k0),
                    hi: (ni - 2, nj - 2, k1),
                };
                let base = k0 * ps;
                let row = |i0: usize, i1: usize, j: usize, k: usize| {
                    let lo = j * di + k * ps + i0;
                    let len = i1 - i0 + 1;
                    let h = lo - 1;
                    let rows: rowexec::Rows9 = [
                        &uv[h - di - ps..],
                        &uv[h - ps..],
                        &uv[h + di - ps..],
                        &uv[h - di..],
                        &uv[h..],
                        &uv[h + di..],
                        &uv[h - di + ps..],
                        &uv[h + ps..],
                        &uv[h + di + ps..],
                    ];
                    B::resid_row(
                        &mut slab[lo - base..lo - base + len],
                        &vv[lo..],
                        rows,
                        &coeffs,
                    );
                };
                match tile {
                    None => for_each_rows(space, row),
                    Some(t) => for_each_tiled_rows(space, t, row),
                }
            });
        }
    });
    rowexec::note_sweep(
        IterSpace::interior(ni, nj, nk).points(),
        resid::FLOPS_PER_POINT,
    );
}

/// Parallel (optionally tiled) in-place red-black sweep across `threads`
/// K-slabs, with a global colour barrier between the red and black phases.
///
/// Race-freedom and bitwise determinism: within one colour pass every
/// stencil read is an opposite-colour point (no same-colour point is a
/// neighbour of another — all six neighbours flip parity) except the
/// centre, which the row engine reads into scratch before scattering, so
/// any update order within a colour yields bitwise-identical results.
/// The only cross-slab reads are the `K±1` planes at slab boundaries;
/// those positions are opposite-colour, so a pre-pass snapshot of each
/// *interface* plane (reused buffers, refreshed per pass) equals its live
/// value for the whole pass. The outermost planes `0` and `nk-1` are
/// never written, so the first slab's down plane and the last slab's up
/// plane are read live, zero-copy. Hence the result is bitwise identical
/// to `redblack::sweep` with `Schedule::Naive` (= every sequential
/// schedule) for every thread count. A single-chunk partition skips the
/// snapshots and the spawns entirely and runs the pass inline.
///
/// When observability collection is on, the two colour passes run under
/// fixed `redblack:red` / `redblack:black` spans opened on the
/// coordinating thread. Degenerate grids are a no-op.
///
/// # Panics
/// Panics unless the `I`/`J` logical extents are equal, or if
/// `threads == 0`.
pub fn redblack_sweep(
    a: &mut Array3<f64>,
    c1: f64,
    c2: f64,
    tile: Option<TileDims>,
    threads: usize,
) {
    redblack_sweep_with::<RowEngine>(a, c1, c2, tile, threads);
}

/// [`redblack_sweep`] with the execution backend chosen at runtime.
pub fn redblack_sweep_backend(
    a: &mut Array3<f64>,
    c1: f64,
    c2: f64,
    tile: Option<TileDims>,
    threads: usize,
    sel: ExecBackend,
) {
    match backend::resolve(sel, RowKernel::RedBlack) {
        Resolved::Row => redblack_sweep_with::<RowEngine>(a, c1, c2, tile, threads),
        Resolved::Lane => redblack_sweep_with::<LaneEngine>(a, c1, c2, tile, threads),
    }
}

/// [`redblack_sweep`] generic over the row-segment execution [`Backend`].
pub fn redblack_sweep_with<B: Backend>(
    a: &mut Array3<f64>,
    c1: f64,
    c2: f64,
    tile: Option<TileDims>,
    threads: usize,
) {
    let n = a.ni();
    let nk = a.nk();
    assert!(a.nj() == n, "red-black kernel expects square I/J extents");
    let (di, ps) = (a.di(), a.plane_stride());
    let chunks = k_chunks(nk, threads);
    if chunks.is_empty() || n < 3 {
        return;
    }
    let av = a.as_mut_slice();

    // Interface halo buffers, allocated once and reused across both
    // colour passes: `lo_halos[c]` snapshots the plane below chunk `c`
    // (owned by chunk `c-1`), `hi_halos[c]` the plane above it.
    let mut lo_halos: Vec<Vec<f64>> = chunks.iter().map(|_| Vec::new()).collect();
    let mut hi_halos: Vec<Vec<f64>> = chunks.iter().map(|_| Vec::new()).collect();

    for parity in 0..2usize {
        let _pass = tiling3d_obs::span(if parity == 0 {
            "redblack:red"
        } else {
            "redblack:black"
        });
        if chunks.len() == 1 {
            let (k0, k1) = chunks[0];
            color_pass_seq::<B>(av, k0, k1, n, di, ps, c1, c2, parity, tile);
            continue;
        }
        // Refresh the interface halos (planes shared between adjacent
        // chunks) for this pass. The outermost planes 0 and nk-1 are
        // never written, so the first chunk's down plane and the last
        // chunk's up plane are read live, zero-copy.
        for c in 0..chunks.len() {
            if c > 0 {
                let k = chunks[c].0 - 1;
                lo_halos[c].clear();
                lo_halos[c].extend_from_slice(&av[k * ps..(k + 1) * ps]);
            }
            if c + 1 < chunks.len() {
                let k = chunks[c].1 + 1;
                hi_halos[c].clear();
                hi_halos[c].extend_from_slice(&av[k * ps..(k + 1) * ps]);
            }
        }
        let (head, rest) = av.split_at_mut(ps);
        let (interior, tail) = rest.split_at_mut((nk - 2) * ps);
        let head: &[f64] = head;
        let tail: &[f64] = tail;
        let mut rest = interior;
        let mut slabs = Vec::with_capacity(chunks.len());
        for &(k0, k1) in &chunks {
            let (slab, more) = rest.split_at_mut((k1 - k0 + 1) * ps);
            rest = more;
            slabs.push((k0, k1, slab));
        }
        thread::scope(|scope| {
            for (c, (k0, k1, slab)) in slabs.into_iter().enumerate() {
                let down: &[f64] = if c == 0 { head } else { &lo_halos[c] };
                let up: &[f64] = if c + 1 == chunks.len() {
                    tail
                } else {
                    &hi_halos[c]
                };
                scope.spawn(move || {
                    color_pass::<B>(slab, down, up, k0, k1, n, di, ps, c1, c2, parity, tile);
                });
            }
        });
    }
    rowexec::note_sweep(
        ((n - 2) * (n - 2) * (nk - 2)) as u64,
        redblack::FLOPS_PER_POINT,
    );
}

/// One colour pass over one K-slab (planes `k0..=k1`, slab-local
/// storage). `down` / `up` are full planes: the live outermost plane or
/// an interface-halo snapshot; they are only consulted for `k == k0` /
/// `k == k1` rows — interior `K±1` reads stay inside the slab.
#[allow(clippy::too_many_arguments)]
fn color_pass<B: Backend>(
    slab: &mut [f64],
    down: &[f64],
    up: &[f64],
    k0: usize,
    k1: usize,
    n: usize,
    di: usize,
    ps: usize,
    c1: f64,
    c2: f64,
    parity: usize,
    tile: Option<TileDims>,
) {
    let mut scratch = vec![0.0f64; n / 2 + 1];
    let mut do_row = |i0: usize, i1: usize, j: usize, k: usize| {
        let lo = j * di + (k - k0) * ps + i0;
        let m = (i1 - i0) / 2 + 1;
        {
            let src: &[f64] = slab;
            let d: &[f64] = if k > k0 {
                &src[lo - ps..]
            } else {
                &down[j * di + i0..]
            };
            let u: &[f64] = if k < k1 {
                &src[lo + ps..]
            } else {
                &up[j * di + i0..]
            };
            B::redblack_row(
                &mut scratch[..m],
                &src[lo..],
                &src[lo - 1..],
                &src[lo - di..],
                &src[lo + 1..],
                &src[lo + di..],
                d,
                u,
                c1,
                c2,
            );
        }
        rowexec::scatter_stride2(&mut slab[lo..], &scratch[..m]);
    };
    match tile {
        None => {
            for k in k0..=k1 {
                for j in 1..=n - 2 {
                    let i0 = 1 + (k + j + parity) % 2;
                    if i0 <= n - 2 {
                        do_row(i0, stride2_last(i0, n - 2), j, k);
                    }
                }
            }
        }
        Some(t) => {
            // JJ/II tiles inside the slab; any order within a colour is
            // bitwise-equivalent (all reads are opposite-colour or
            // pre-write centre).
            let hi = n - 2;
            let mut jj = 1usize;
            while jj <= hi {
                let j_hi = (jj + t.tj - 1).min(hi);
                let mut ii = 1usize;
                while ii <= hi {
                    let i_hi = (ii + t.ti - 1).min(hi);
                    for k in k0..=k1 {
                        for j in jj..=j_hi {
                            let i0 = 1 + (k + j + parity) % 2;
                            if let Some(first) = stride2_clip(i0, ii, i_hi) {
                                do_row(first, stride2_last(first, i_hi), j, k);
                            }
                        }
                    }
                    ii += t.ti;
                }
                jj += t.tj;
            }
        }
    }
}

/// One colour pass over the whole interior on the calling thread: no
/// spawns, no phase split, `K±1` reads straight from the live array.
#[allow(clippy::too_many_arguments)]
fn color_pass_seq<B: Backend>(
    av: &mut [f64],
    k0: usize,
    k1: usize,
    n: usize,
    di: usize,
    ps: usize,
    c1: f64,
    c2: f64,
    parity: usize,
    tile: Option<TileDims>,
) {
    let mut scratch = vec![0.0f64; n / 2 + 1];
    let mut do_row = |i0: usize, i1: usize, j: usize, k: usize| {
        let lo = j * di + k * ps + i0;
        let m = (i1 - i0) / 2 + 1;
        {
            let src: &[f64] = av;
            B::redblack_row(
                &mut scratch[..m],
                &src[lo..],
                &src[lo - 1..],
                &src[lo - di..],
                &src[lo + 1..],
                &src[lo + di..],
                &src[lo - ps..],
                &src[lo + ps..],
                c1,
                c2,
            );
        }
        rowexec::scatter_stride2(&mut av[lo..], &scratch[..m]);
    };
    match tile {
        None => {
            for k in k0..=k1 {
                for j in 1..=n - 2 {
                    let i0 = 1 + (k + j + parity) % 2;
                    if i0 <= n - 2 {
                        do_row(i0, stride2_last(i0, n - 2), j, k);
                    }
                }
            }
        }
        Some(t) => {
            let hi = n - 2;
            let mut jj = 1usize;
            while jj <= hi {
                let j_hi = (jj + t.tj - 1).min(hi);
                let mut ii = 1usize;
                while ii <= hi {
                    let i_hi = (ii + t.ti - 1).min(hi);
                    for k in k0..=k1 {
                        for j in jj..=j_hi {
                            let i0 = 1 + (k + j + parity) % 2;
                            if let Some(first) = stride2_clip(i0, ii, i_hi) {
                                do_row(first, stride2_last(first, i_hi), j, k);
                            }
                        }
                    }
                    ii += t.ti;
                }
                jj += t.tj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redblack::Schedule;
    use crate::resid::Coeffs;
    use tiling3d_grid::fill_random;

    #[test]
    fn k_chunks_cover_the_interior_disjointly() {
        for nk in [3usize, 4, 10, 31] {
            for t in [1usize, 2, 3, 8, 64] {
                let chunks = k_chunks(nk, t);
                let mut expect = 1usize;
                for &(lo, hi) in &chunks {
                    assert_eq!(lo, expect);
                    assert!(hi >= lo);
                    expect = hi + 1;
                }
                assert_eq!(expect, nk - 1, "nk={nk} t={t}");
                assert!(chunks.len() <= t);
            }
        }
    }

    #[test]
    fn degenerate_grids_are_a_no_op() {
        // Regression: nk < 3 used to underflow in k_chunks and panic.
        for nk in [1usize, 2] {
            assert!(k_chunks(nk, 4).is_empty());
            let mut a = Array3::new(5, 5, nk);
            let mut b = Array3::new(5, 5, nk);
            fill_random(&mut b, 3);
            jacobi3d_sweep(&mut a, &b, 0.5, None, 4);
            assert!(a.logical_eq(&Array3::new(5, 5, nk)), "nk={nk}");
            let mut rb = b.clone();
            redblack_sweep(&mut rb, 0.4, 0.1, None, 4);
            assert!(rb.logical_eq(&b), "nk={nk}");
            let mut r = Array3::new(5, 5, nk);
            resid_sweep(&mut r, &b, &b, &Coeffs::MGRID_A, None, 4);
            assert!(r.logical_eq(&Array3::new(5, 5, nk)), "nk={nk}");
        }
    }

    #[test]
    fn parallel_jacobi_matches_sequential_bitwise() {
        let n = 24;
        let mut b = Array3::with_padding(n, n, n, 29, 27);
        fill_random(&mut b, 77);
        let mut seq = Array3::with_padding(n, n, n, 29, 27);
        crate::jacobi3d::sweep(&mut seq, &b, 1.0 / 6.0);
        for threads in [1usize, 2, 3, 7] {
            let mut par = Array3::with_padding(n, n, n, 29, 27);
            jacobi3d_sweep(&mut par, &b, 1.0 / 6.0, None, threads);
            assert!(seq.logical_eq(&par), "threads={threads}");
        }
    }

    #[test]
    fn parallel_tiled_jacobi_matches_sequential() {
        let n = 20;
        let mut b = Array3::new(n, n, n);
        fill_random(&mut b, 5);
        let mut seq = Array3::new(n, n, n);
        crate::jacobi3d::sweep(&mut seq, &b, 0.5);
        let mut par = Array3::new(n, n, n);
        jacobi3d_sweep(&mut par, &b, 0.5, Some(TileDims::new(5, 4)), 4);
        assert!(seq.logical_eq(&par));
    }

    #[test]
    fn parallel_resid_matches_sequential_bitwise() {
        let n = 18;
        let mut u = Array3::with_padding(n, n, n, 21, 19);
        let mut v = u.clone();
        fill_random(&mut u, 8);
        fill_random(&mut v, 9);
        let mut seq = Array3::with_padding(n, n, n, 21, 19);
        crate::resid::sweep(&mut seq, &u, &v, &Coeffs::MGRID_A, None);
        for threads in [1usize, 3, 5] {
            let mut par = Array3::with_padding(n, n, n, 21, 19);
            resid_sweep(
                &mut par,
                &u,
                &v,
                &Coeffs::MGRID_A,
                Some(TileDims::new(4, 4)),
                threads,
            );
            assert!(seq.logical_eq(&par), "threads={threads}");
        }
    }

    #[test]
    fn parallel_redblack_matches_sequential_bitwise() {
        for (n, nk, di, dj) in [(16usize, 16usize, 19usize, 17usize), (9, 12, 9, 12)] {
            let mut init = Array3::with_padding(n, n, nk, di, dj);
            fill_random(&mut init, 42);
            let mut seq = init.clone();
            crate::redblack::sweep(&mut seq, 0.4, 0.1, Schedule::Naive);
            for threads in [1usize, 2, 3, 7] {
                let mut par = init.clone();
                redblack_sweep(&mut par, 0.4, 0.1, None, threads);
                assert!(seq.logical_eq(&par), "n={n} nk={nk} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_tiled_redblack_matches_sequential() {
        let (n, nk) = (15usize, 11usize);
        let mut init = Array3::with_padding(n, n, nk, 18, 16);
        fill_random(&mut init, 12);
        let mut seq = init.clone();
        crate::redblack::sweep(&mut seq, 0.4, 0.1, Schedule::Naive);
        for (ti, tj) in [(4usize, 3usize), (100, 1), (1, 100)] {
            for threads in [1usize, 2, 5] {
                let mut par = init.clone();
                redblack_sweep(&mut par, 0.4, 0.1, Some(TileDims::new(ti, tj)), threads);
                assert!(seq.logical_eq(&par), "tile=({ti},{tj}) threads={threads}");
            }
        }
    }

    #[test]
    fn more_threads_than_planes_is_fine() {
        let n = 5;
        let mut b = Array3::new(n, n, n);
        fill_random(&mut b, 2);
        let mut seq = Array3::new(n, n, n);
        crate::jacobi3d::sweep(&mut seq, &b, 1.0);
        let mut par = Array3::new(n, n, n);
        jacobi3d_sweep(&mut par, &b, 1.0, None, 64);
        assert!(seq.logical_eq(&par));
        let mut rb_seq = b.clone();
        crate::redblack::sweep(&mut rb_seq, 0.3, 0.2, Schedule::Naive);
        let mut rb_par = b.clone();
        redblack_sweep(&mut rb_par, 0.3, 0.2, None, 64);
        assert!(rb_seq.logical_eq(&rb_par));
    }
}
