//! Time skewing for the *simple* stencil case (Fig 5, top) — the related
//! work the paper positions itself against.
//!
//! For a bare time loop around a single 2D Jacobi sweep, techniques like
//! Song & Li's and Wonnacott's tile the `(T, J)` space after skewing
//! `J' = J + T`, exploiting reuse **across time steps** — something the
//! paper's per-sweep tiling deliberately does not attempt, because it
//! stops working as soon as the time loop contains multiple nests
//! ([`crate::timestep`]) or a succession of grid sizes (multigrid). This
//! module implements the skewed schedule so that claim can be demonstrated
//! both ways:
//!
//! * for the simple kernel, time skewing reuses each band across all time
//!   steps of a block — far fewer misses than per-sweep schedules (the
//!   test pins a >2x read-miss reduction);
//! * the legality argument is exactly
//!   `tiling3d_loopnest::dependence::time_step_loop_needs_skewing`: the
//!   dependence distances `(1, -1..1)` become `(1, 0..2)` after the skew,
//!   making the `(T, J')` band fully permutable and hence tilable.
//!
//! Ping-pong buffering: time step `t` reads buffer `t % 2` and writes
//! buffer `(t+1) % 2`; the skewed schedule's write-after-read hazards are
//! covered by the same non-negative distances.
//!
//! The skewed iteration structure itself — block the `(T, B')` band after
//! the skew `b' = b + t`, then walk each block's valid points — is shared
//! infrastructure: [`skewed_blocks`] / [`for_each_skewed`] drive the
//! compute and trace forms here *and* the 3D temporal-tiling engine in
//! [`crate::timetile`], whose wavefront scheduler groups the same blocks
//! by anti-diagonal ([`SkewedBlock::wavefront`]).

use tiling3d_cachesim::AccessSink;
use tiling3d_grid::Array2;

/// One tile of a skewed `(T, B')` band: time steps `t0..=t1` of the block,
/// skewed band indices `b0..=b1` (`b' = b + t`), plus the block's position
/// in the tile grid — the coordinates wavefront scheduling works in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkewedBlock {
    /// First time step of the block.
    pub t0: usize,
    /// Last time step of the block (inclusive).
    pub t1: usize,
    /// First skewed band index of the block.
    pub b0: usize,
    /// Last skewed band index of the block (inclusive).
    pub b1: usize,
    /// Time-block index (`t0 / st`).
    pub tt: usize,
    /// Skewed-band-block index.
    pub bb: usize,
}

impl SkewedBlock {
    /// Visits the block's valid points in execution order — `t` ascending,
    /// then `b' = b + t` ascending — calling `f(t, b)` with the *unskewed*
    /// band index `b` clipped to `lo..=hi`.
    pub fn for_each(&self, lo: usize, hi: usize, mut f: impl FnMut(usize, usize)) {
        for t in self.t0..=self.t1 {
            for bp in self.b0..=self.b1 {
                // b = b' - t; only indices inside the band compute.
                if bp < t + lo {
                    continue;
                }
                let b = bp - t;
                if b > hi {
                    continue;
                }
                f(t, b);
            }
        }
    }

    /// Anti-diagonal index in the `(TT, BB)` tile grid. After the skew
    /// every dependence distance is component-wise non-negative over
    /// `(T, B')`, so blocks sharing a wavefront index carry no dependence
    /// between them — they may run concurrently.
    pub fn wavefront(&self) -> usize {
        self.tt + self.bb
    }
}

/// Enumerates the blocks of the skewed `(T, B')` band for `steps` time
/// steps over the unskewed band `lo..=hi` (skew `b' = b + t`), with time
/// blocks of `st` and skewed-band blocks of `sb`, in sequential execution
/// order: band blocks outer, time blocks inner — each band of skewed
/// columns is carried through all its time steps before moving on, which
/// is the cross-timestep reuse the schedule exists for.
///
/// # Panics
/// Panics if `st` or `sb` is zero.
pub fn skewed_blocks(steps: usize, lo: usize, hi: usize, st: usize, sb: usize) -> Vec<SkewedBlock> {
    assert!(st > 0 && sb > 0, "tile extents must be nonzero");
    let mut out = Vec::new();
    if steps == 0 || hi < lo {
        return out;
    }
    let bp_max = hi + steps - 1;
    let (mut bb, mut b0) = (0usize, lo);
    while b0 <= bp_max {
        let b1 = (b0 + sb - 1).min(bp_max);
        let (mut tt, mut t0) = (0usize, 0usize);
        while t0 < steps {
            let t1 = (t0 + st - 1).min(steps - 1);
            out.push(SkewedBlock {
                t0,
                t1,
                b0,
                b1,
                tt,
                bb,
            });
            t0 += st;
            tt += 1;
        }
        b0 += sb;
        bb += 1;
    }
    out
}

/// Walks every valid `(t, b)` point of the skewed schedule in execution
/// order — the one iteration structure [`run_time_skewed`],
/// [`trace_time_skewed`] and the 3D temporal engine
/// ([`crate::timetile`]) all consume.
pub fn for_each_skewed(
    steps: usize,
    lo: usize,
    hi: usize,
    st: usize,
    sb: usize,
    mut f: impl FnMut(usize, usize),
) {
    for block in skewed_blocks(steps, lo, hi, st, sb) {
        block.for_each(lo, hi, &mut f);
    }
}

/// Runs `steps` Jacobi time steps naively (full sweep per step, ping-pong
/// buffers). Returns nothing; the final state lives in `bufs[steps % 2]`.
pub fn run_naive(bufs: &mut [Array2<f64>; 2], c: f64, steps: usize) {
    let n = bufs[0].ni();
    assert_eq!(bufs[0].nj(), n);
    for t in 0..steps {
        let (src, dst) = split(bufs, t);
        let di = src.di();
        let (sv, dv) = (src.as_slice(), dst.as_mut_slice());
        for j in 1..=n - 2 {
            for i in 1..=n - 2 {
                let idx = i + j * di;
                dv[idx] = c * (sv[idx - 1] + sv[idx + 1] + sv[idx - di] + sv[idx + di]);
            }
        }
    }
}

/// Runs the same computation with skewed `(T, J')` tiling: `J' = J + T`,
/// time blocks of `st` steps, skewed-column blocks of `sj`. Bitwise
/// identical to [`run_naive`].
///
/// # Panics
/// Panics if `st` or `sj` is zero or the two buffers differ in shape.
pub fn run_time_skewed(bufs: &mut [Array2<f64>; 2], c: f64, steps: usize, st: usize, sj: usize) {
    let n = bufs[0].ni();
    assert_eq!(bufs[0].nj(), n);
    assert_eq!(bufs[0].di(), bufs[1].di());
    for_each_skewed(steps, 1, n - 2, st, sj, |t, j| {
        // Split borrows for this step's parity.
        let (src, dst) = split(bufs, t);
        let di = src.di();
        let (sv, dv) = (src.as_slice(), dst.as_mut_slice());
        for i in 1..=n - 2 {
            let idx = i + j * di;
            dv[idx] = c * (sv[idx - 1] + sv[idx + 1] + sv[idx - di] + sv[idx + di]);
        }
    });
}

/// Borrows the ping-pong pair as `(source of step t, destination)`.
fn split(bufs: &mut [Array2<f64>; 2], t: usize) -> (&Array2<f64>, &mut Array2<f64>) {
    let (a, b) = bufs.split_at_mut(1);
    if t.is_multiple_of(2) {
        (&a[0], &mut b[0])
    } else {
        (&b[0], &mut a[0])
    }
}

/// Trace of the naive schedule (buffer bases explicit so conflict layouts
/// can be studied; 4 reads + 1 write per point per step).
pub fn trace_naive<S: AccessSink>(
    n: usize,
    di: usize,
    steps: usize,
    bases: [u64; 2],
    sink: &mut S,
) {
    for t in 0..steps {
        let (src, dst) = if t % 2 == 0 {
            (bases[0], bases[1])
        } else {
            (bases[1], bases[0])
        };
        for j in 1..=n - 2 {
            for i in 1..=n - 2 {
                let idx = (i + j * di) as i64;
                let at = |base: u64, off: i64| base + ((idx + off) * 8) as u64;
                sink.read(at(src, -1));
                sink.read(at(src, 1));
                sink.read(at(src, -(di as i64)));
                sink.read(at(src, di as i64));
                sink.write(at(dst, 0));
            }
        }
    }
}

/// Trace of the skewed schedule, same per-point access pattern.
pub fn trace_time_skewed<S: AccessSink>(
    n: usize,
    di: usize,
    steps: usize,
    st: usize,
    sj: usize,
    bases: [u64; 2],
    sink: &mut S,
) {
    for_each_skewed(steps, 1, n - 2, st, sj, |t, j| {
        let (src, dst) = if t % 2 == 0 {
            (bases[0], bases[1])
        } else {
            (bases[1], bases[0])
        };
        for i in 1..=n - 2 {
            let idx = (i + j * di) as i64;
            let at = |base: u64, off: i64| base + ((idx + off) * 8) as u64;
            sink.read(at(src, -1));
            sink.read(at(src, 1));
            sink.read(at(src, -(di as i64)));
            sink.read(at(src, di as i64));
            sink.write(at(dst, 0));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiling3d_cachesim::{Cache, CacheConfig, CountingSink};
    use tiling3d_grid::fill_random2;

    fn bufs(n: usize, seed: u64) -> [Array2<f64>; 2] {
        let mut b0 = Array2::new(n, n);
        fill_random2(&mut b0, seed);
        let b1 = b0.clone(); // boundaries must match across buffers
        [b0, b1]
    }

    #[test]
    fn skewed_matches_naive_bitwise() {
        for &(n, steps, stb, sjb) in &[
            (10usize, 4usize, 2usize, 3usize),
            (16, 7, 3, 5),
            (12, 1, 4, 4),
            (9, 6, 100, 100),
            (11, 5, 1, 1),
        ] {
            let mut a = bufs(n, 77);
            let mut b = bufs(n, 77);
            run_naive(&mut a, 0.25, steps);
            run_time_skewed(&mut b, 0.25, steps, stb, sjb);
            let fin = steps % 2;
            assert!(
                a[fin].logical_eq(&b[fin]),
                "n={n} steps={steps} tile=({stb},{sjb})"
            );
        }
    }

    #[test]
    fn trace_volumes_agree() {
        let (n, steps) = (12usize, 5usize);
        let bases = [0u64, (n * n * 8) as u64];
        let mut c1 = CountingSink::default();
        trace_naive(n, n, steps, bases, &mut c1);
        let mut c2 = CountingSink::default();
        trace_time_skewed(n, n, steps, 2, 3, bases, &mut c2);
        assert_eq!(c1.reads, c2.reads);
        assert_eq!(c1.writes, c2.writes);
        assert_eq!(c1.writes, (steps * (n - 2) * (n - 2)) as u64);
    }

    #[test]
    fn time_skewing_wins_big_for_the_simple_kernel() {
        // The Song & Li claim the paper concedes: for a bare time loop
        // around one stencil, skewed time tiling reuses each band across
        // the whole time block. N=100 arrays (80KB x 2) overflow a 16KB L1;
        // bands of ~8 skewed columns of both buffers fit — *provided* the
        // two buffers' bands do not conflict, which with consecutive
        // allocation they do (their bases end up 1920B apart mod 16K).
        // Inter-variable padding fixes it — even the rival technique needs
        // the paper's padding machinery on a direct-mapped cache.
        let (n, steps) = (100usize, 16usize);
        let array_bytes = (n * n * 8) as u64;
        let consecutive = [0u64, array_bytes];
        let staggered = tiling3d_core::intervar::staggered_bases(2, array_bytes, 16 * 1024, 32);
        let staggered = [staggered[0], staggered[1]];
        let miss = |skewed: bool, bases: [u64; 2]| {
            let mut l1 = Cache::new(CacheConfig::ULTRASPARC2_L1);
            if skewed {
                trace_time_skewed(n, n, steps, steps, 8, bases, &mut l1);
            } else {
                trace_naive(n, n, steps, bases, &mut l1);
            }
            l1.stats().read_misses
        };
        let naive = miss(false, consecutive);
        let skewed_conflicting = miss(true, consecutive);
        let skewed_padded = miss(true, staggered);
        assert!(
            (skewed_padded as f64) < naive as f64 / 2.0,
            "padded time skewing should cut read misses >2x: naive {naive} vs {skewed_padded}"
        );
        assert!(
            skewed_conflicting > skewed_padded * 2,
            "without inter-variable padding the skewed bands should thrash:              {skewed_conflicting} vs {skewed_padded}"
        );
    }

    #[test]
    fn skewed_blocks_cover_every_point_exactly_once() {
        for &(steps, lo, hi, st, sb) in &[
            (5usize, 1usize, 9usize, 2usize, 3usize),
            (1, 1, 6, 4, 4),
            (7, 2, 4, 3, 1),
            (4, 1, 12, 100, 100),
        ] {
            let mut seen = std::collections::HashSet::new();
            for_each_skewed(steps, lo, hi, st, sb, |t, b| {
                assert!(seen.insert((t, b)), "duplicate ({t},{b})");
                assert!((lo..=hi).contains(&b));
                assert!(t < steps);
            });
            assert_eq!(seen.len(), steps * (hi - lo + 1));
        }
    }

    #[test]
    fn wavefront_blocks_are_dependence_free() {
        // Two blocks on one anti-diagonal must not contain points related
        // by any skewed dependence direction (dt, db') in {1} x {0, 1, 2}
        // or {2} x {2} — the component-wise non-negative distance cone the
        // 3D engine's concurrency argument rests on.
        let blocks = skewed_blocks(6, 1, 10, 2, 3);
        for a in &blocks {
            for b in &blocks {
                if a == b || a.wavefront() != b.wavefront() {
                    continue;
                }
                // Component-wise ordered distinct blocks would admit a
                // forward dependence; same-wavefront blocks never are.
                let ordered = (a.t0 <= b.t0 && a.b0 <= b.b0) || (b.t0 <= a.t0 && b.b0 <= a.b0);
                assert!(!ordered, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn zero_steps_is_identity() {
        let mut a = bufs(8, 3);
        let orig = a[0].clone();
        run_time_skewed(&mut a, 0.25, 0, 4, 4);
        assert!(a[0].logical_eq(&orig));
    }

    #[test]
    #[should_panic]
    fn zero_tile_rejected() {
        let mut a = bufs(8, 3);
        run_time_skewed(&mut a, 0.25, 2, 0, 4);
    }
}
