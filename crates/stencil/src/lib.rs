//! The paper's stencil kernels — compute and cache-trace forms.
//!
//! Three kernels carry the whole experimental evaluation of Rivera & Tseng
//! (SC 2000), and all three live here, each in **original** and **tiled**
//! form, as both an actual `f64` computation and an exact address-trace
//! generator for the cache simulator:
//!
//! * [`jacobi3d`] — the 6-point 3D Jacobi iteration of Fig 3/6 (plus the
//!   2D variant of Fig 1 used for the "2D doesn't need tiling" argument);
//! * [`redblack`] — 3D red-black SOR in the three forms of Fig 12: naive
//!   two-pass, fused (black points of plane `K` updated right after red
//!   points of plane `K+1`), and the skewed tiled schedule;
//! * [`resid`] — the 27-point RESID kernel of SPEC/NAS MGRID (Fig 13),
//!   reading a second input array `V` (the cross-interference case of
//!   Section 3.5).
//!
//! Tiling **never changes results**: the tiled schedules execute the same
//! per-point expression in a different order, and red-black's skewed tiling
//! preserves the red-before-black dependence exactly, so every tiled sweep
//! is bitwise identical to its original — a property the test suites check
//! exhaustively.
//!
//! [`kernels::Kernel`] packages the three kernels behind one dispatch enum
//! for the benchmark harness, and [`parallel`] provides scoped-thread
//! K-slab parallel sweeps showing that the paper's intra-nest tiling
//! composes with thread parallelism.
//!
//! Every production sweep runs on a **row-segment execution backend**
//! (the [`backend::Backend`] trait): the loop nest is decomposed into
//! contiguous unit-stride (or stride-2, for red-black colours) row
//! segments, and the backend decides how each segment's arithmetic is
//! scheduled. [`backend::RowEngine`] executes segments via [`rowexec`] —
//! pre-sliced operand rows so the compiler can eliminate bounds checks and
//! autovectorize the `I` loop — while [`backend::LaneEngine`] processes
//! them as explicit `[f64; LANES]` blocks ([`laneexec`]). Both are held
//! bitwise-equal to the original per-point formulations, which survive in
//! [`mod@reference`] as the executable specification.
//!
//! Schedule legality is enforced in two layers: statically, each kernel's
//! transforms are planned through `tiling3d_core::plan_certified` and run
//! via [`kernels::Kernel::run_certified`], which only accepts a
//! dependence-certified plan; dynamically (debug builds), [`crosscheck`]
//! replays the transformed visit order and verifies it is a permutation of
//! the iteration space consistent with the certificate's dependences.

#![warn(missing_docs)]

pub mod backend;
pub mod copyopt;
pub mod crosscheck;
pub mod jacobi2d;
pub mod jacobi3d;
pub mod kernels;
pub mod laneexec;
pub mod parallel;
pub mod redblack;
pub mod redblack2d;
pub mod reference;
pub mod resid;
pub mod rowexec;
pub mod timeskew;
pub mod timestep;
pub mod timetile;
