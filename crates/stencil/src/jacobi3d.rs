//! 3D Jacobi iteration (Figs 3, 6): 6-point stencil, two arrays.
//!
//! ```text
//! A(I,J,K) = C * ( B(I-1,J,K) + B(I+1,J,K)
//!                + B(I,J-1,K) + B(I,J+1,K)
//!                + B(I,J,K-1) + B(I,J,K+1) )
//! ```

use tiling3d_cachesim::AccessSink;
use tiling3d_grid::Array3;
use tiling3d_loopnest::{for_each_rows, for_each_tiled, for_each_tiled_rows, IterSpace, TileDims};

use crate::backend::{self, Backend, ExecBackend, LaneEngine, Resolved, RowEngine, RowKernel};
use crate::rowexec;

/// Floating-point operations per interior point (5 adds + 1 multiply).
pub const FLOPS_PER_POINT: u64 = 6;

/// FLOPs in one full sweep over the interior of an `ni x nj x nk` grid.
pub fn sweep_flops(ni: usize, nj: usize, nk: usize) -> u64 {
    IterSpace::interior(ni, nj, nk).points() * FLOPS_PER_POINT
}

/// One untiled sweep (`Orig` order: `K`/`J`/`I`).
///
/// Runs on the row engine ([`rowexec`]); bitwise identical to the
/// per-point reference in [`crate::reference::jacobi3d`].
///
/// # Panics
/// Panics if the two arrays differ in logical or allocated extents.
pub fn sweep(a: &mut Array3<f64>, b: &Array3<f64>, c: f64) {
    sweep_with::<RowEngine>(a, b, c);
}

/// [`sweep`] on an explicit execution backend `B`.
pub fn sweep_with<B: Backend>(a: &mut Array3<f64>, b: &Array3<f64>, c: f64) {
    check_pair(a, b);
    sweep_impl::<B>(a, b, c, None);
}

/// One tiled sweep in the Fig 6 schedule (`JJ`/`II`/`K`/`J`/`I`).
///
/// Bitwise-identical results to [`sweep`]; only the iteration order (and
/// hence the cache behaviour) changes.
pub fn sweep_tiled(a: &mut Array3<f64>, b: &Array3<f64>, c: f64, tile: TileDims) {
    sweep_tiled_with::<RowEngine>(a, b, c, tile);
}

/// [`sweep_tiled`] on an explicit execution backend `B`.
pub fn sweep_tiled_with<B: Backend>(a: &mut Array3<f64>, b: &Array3<f64>, c: f64, tile: TileDims) {
    check_pair(a, b);
    sweep_impl::<B>(a, b, c, Some(tile));
}

/// One sweep (tiled or not) on the backend `sel` resolves to — the
/// runtime-dispatch form of [`sweep_with`] / [`sweep_tiled_with`].
pub fn sweep_backend(
    a: &mut Array3<f64>,
    b: &Array3<f64>,
    c: f64,
    tile: Option<TileDims>,
    sel: ExecBackend,
) {
    check_pair(a, b);
    match backend::resolve(sel, RowKernel::Jacobi3d) {
        Resolved::Row => sweep_impl::<RowEngine>(a, b, c, tile),
        Resolved::Lane => sweep_impl::<LaneEngine>(a, b, c, tile),
    }
}

fn sweep_impl<B: Backend>(a: &mut Array3<f64>, b: &Array3<f64>, c: f64, tile: Option<TileDims>) {
    let (di, ps) = (b.di(), b.plane_stride());
    let space = IterSpace::interior(b.ni(), b.nj(), b.nk());
    let (av, bv) = (a.as_mut_slice(), b.as_slice());
    let row = |i0: usize, i1: usize, j: usize, k: usize| {
        let lo = j * di + k * ps + i0;
        let len = i1 - i0 + 1;
        B::jacobi3d_row(
            &mut av[lo..lo + len],
            &bv[lo - 1..],
            &bv[lo + 1..],
            &bv[lo - di..],
            &bv[lo + di..],
            &bv[lo - ps..],
            &bv[lo + ps..],
            c,
        );
    };
    match tile {
        None => for_each_rows(space, row),
        Some(t) => for_each_tiled_rows(space, t, row),
    }
    rowexec::note_sweep(space.points(), FLOPS_PER_POINT);
}

/// Replays the exact address trace of one sweep into `sink`.
///
/// Layout: `A` at byte 0, `B` immediately after `A` (consecutive
/// allocation, as a Fortran compiler would place two declarations), both
/// allocated `di x dj x nk`. Pass `tile = None` for the original order or
/// `Some(t)` for the tiled schedule. Access order per point matches the
/// source expression: the six `B` loads, then the `A` store.
pub fn trace<S: AccessSink>(
    ni: usize,
    nj: usize,
    nk: usize,
    di: usize,
    dj: usize,
    tile: Option<TileDims>,
    sink: &mut S,
) {
    let b_base = (di * dj * nk * 8) as u64;
    trace_at(ni, nj, nk, di, dj, tile, 0, b_base, sink);
}

/// Like [`trace`] but with explicit byte base addresses for `A` and `B`,
/// enabling inter-variable padding experiments (Section 3.5 of the paper;
/// see `tiling3d_core::intervar`).
#[allow(clippy::too_many_arguments)]
pub fn trace_at<S: AccessSink>(
    ni: usize,
    nj: usize,
    nk: usize,
    di: usize,
    dj: usize,
    tile: Option<TileDims>,
    a_base: u64,
    b_base: u64,
    sink: &mut S,
) {
    assert!(
        di >= ni && dj >= nj,
        "allocated dims must cover logical dims"
    );
    let ps = di * dj;
    let space = IterSpace::interior(ni, nj, nk);
    let body = |i: usize, j: usize, k: usize| {
        let idx = (i + j * di + k * ps) as u64;
        let b = |off: i64| b_base.wrapping_add((idx as i64 + off) as u64 * 8);
        // B(i-1) then B(i+1): an in-order +16-byte run, batched so the
        // cache probes their (usually shared) line once.
        sink.read_run(b(-1), 16, 2);
        sink.read(b(-(di as i64)));
        sink.read(b(di as i64));
        sink.read(b(-(ps as i64)));
        sink.read(b(ps as i64));
        sink.write(a_base + idx * 8);
    };
    match tile {
        None => tiling3d_loopnest::for_each(space, body),
        Some(t) => for_each_tiled(space, t, body),
    }
}

fn check_pair(a: &Array3<f64>, b: &Array3<f64>) {
    assert_eq!(
        (a.ni(), a.nj(), a.nk(), a.di(), a.dj()),
        (b.ni(), b.nj(), b.nk(), b.di(), b.dj()),
        "A and B must share logical and allocated extents"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiling3d_cachesim::CountingSink;
    use tiling3d_grid::{fill_linear3, fill_random};

    fn pair(n: usize, di: usize, dj: usize) -> (Array3<f64>, Array3<f64>) {
        let a = Array3::with_padding(n, n, n, di, dj);
        let mut b = Array3::with_padding(n, n, n, di, dj);
        fill_random(&mut b, 0xBEEF);
        (a, b)
    }

    #[test]
    fn linear_field_oracle() {
        // Sum of the six face neighbours of an affine field = 6x centre.
        let (mut a, mut b) = pair(8, 8, 8);
        fill_linear3(&mut b, 2.0, -3.0, 5.0, 1.25);
        sweep(&mut a, &b, 0.5);
        for k in 1..7 {
            for j in 1..7 {
                for i in 1..7 {
                    let expect = 0.5 * 6.0 * b.get(i, j, k);
                    assert!(
                        (a.get(i, j, k) - expect).abs() < 1e-9,
                        "mismatch at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_equals_untiled_bitwise() {
        for &(n, di, dj, ti, tj) in &[
            (10usize, 10usize, 10usize, 3usize, 4usize),
            (17, 20, 19, 5, 2),
            (9, 16, 9, 100, 1),
        ] {
            let (mut a1, b) = pair(n, di, dj);
            let mut a2 = a1.clone();
            sweep(&mut a1, &b, 1.0 / 6.0);
            sweep_tiled(&mut a2, &b, 1.0 / 6.0, TileDims::new(ti, tj));
            assert!(a1.logical_eq(&a2), "n={n} tile=({ti},{tj})");
        }
    }

    #[test]
    fn padding_does_not_change_results() {
        let (mut a1, b1) = pair(12, 12, 12);
        sweep(&mut a1, &b1, 0.25);
        let b2 = b1.repadded(19, 17);
        let mut a2 = Array3::with_padding(12, 12, 12, 19, 17);
        sweep_tiled(&mut a2, &b2, 0.25, TileDims::new(4, 4));
        assert!(a1.logical_eq(&a2));
    }

    #[test]
    fn trace_counts_match_closed_form() {
        let mut c = CountingSink::default();
        trace(10, 10, 10, 10, 10, None, &mut c);
        let pts = 8u64 * 8 * 8;
        assert_eq!(c.reads, 6 * pts);
        assert_eq!(c.writes, pts);
        let mut ct = CountingSink::default();
        trace(10, 10, 10, 12, 11, Some(TileDims::new(3, 3)), &mut ct);
        assert_eq!(ct.reads, 6 * pts);
        assert_eq!(ct.writes, pts);
    }

    #[test]
    fn trace_matches_loopnest_interpreter() {
        use tiling3d_loopnest::{ArrayDesc, Nest, StencilShape};
        // Same trace, once handwritten, once through the loop IR. Note the
        // IR reads offsets in StencilShape::jacobi3d() order which matches
        // the handwritten order.
        #[derive(Default, PartialEq, Debug)]
        struct Rec(Vec<(u64, bool)>);
        impl AccessSink for Rec {
            fn read(&mut self, a: u64) {
                self.0.push((a, false));
            }
            fn write(&mut self, a: u64) {
                self.0.push((a, true));
            }
        }
        let (n, di, dj) = (9usize, 11usize, 10usize);
        let mut hand = Rec::default();
        trace(n, n, n, di, dj, None, &mut hand);

        let nest = Nest::stencil(
            &StencilShape::jacobi3d(),
            (1, n as i64 - 2),
            (1, n as i64 - 2),
            (1, n as i64 - 2),
            0, // input = B
            1, // output = A
        );
        let arrays = [
            ArrayDesc {
                base: (di * dj * n * 8) as u64,
                di,
                dj,
                dk: n,
            }, // B
            ArrayDesc {
                base: 0,
                di,
                dj,
                dk: n,
            }, // A
        ];
        let mut ir = Rec::default();
        nest.execute_checked(&arrays, &mut ir)
            .expect("jacobi nest verifies");
        assert_eq!(hand, ir);
    }

    #[test]
    fn tiled_trace_matches_tiled_interpreter() {
        use tiling3d_loopnest::{ArrayDesc, Nest, StencilShape};
        #[derive(Default, PartialEq, Debug)]
        struct Rec(Vec<(u64, bool)>);
        impl AccessSink for Rec {
            fn read(&mut self, a: u64) {
                self.0.push((a, false));
            }
            fn write(&mut self, a: u64) {
                self.0.push((a, true));
            }
        }
        let (n, di, dj, ti, tj) = (11usize, 13usize, 12usize, 4usize, 3usize);
        let mut hand = Rec::default();
        trace(n, n, n, di, dj, Some(TileDims::new(ti, tj)), &mut hand);

        let mut nest = Nest::stencil(
            &StencilShape::jacobi3d(),
            (1, n as i64 - 2),
            (1, n as i64 - 2),
            (1, n as i64 - 2),
            0,
            1,
        );
        nest.tile_jj_ii(ti, tj);
        let arrays = [
            ArrayDesc {
                base: (di * dj * n * 8) as u64,
                di,
                dj,
                dk: n,
            },
            ArrayDesc {
                base: 0,
                di,
                dj,
                dk: n,
            },
        ];
        let mut ir = Rec::default();
        nest.execute_checked(&arrays, &mut ir)
            .expect("tiled jacobi nest verifies");
        assert_eq!(hand, ir);
    }

    #[test]
    fn flops_accounting() {
        assert_eq!(sweep_flops(10, 10, 10), 512 * 6);
    }

    #[test]
    #[should_panic]
    fn mismatched_pair_panics() {
        let mut a = Array3::<f64>::new(8, 8, 8);
        let b = Array3::<f64>::with_padding(8, 8, 8, 9, 8);
        sweep(&mut a, &b, 1.0);
    }
}
