//! 3D temporal tiling: time-skewed `(T, K')` blocks executed as
//! multicore wavefronts.
//!
//! The paper stops tiling at one grid sweep; this module goes past it.
//! For `steps` iterated sweeps of the 3D Jacobi (ping-pong buffers) or
//! red-black (in-place, colour passes) kernels, the `(T, K)` band is
//! skewed `K' = K + T` and blocked into `st x sk` tiles — the schedule
//! family certified by `tiling3d_loopnest::legality::Schedule::
//! time_skewed_3d` against `DepSet::time_stepped_3d` /
//! `DepSet::time_stepped_redblack`. After the unit skew every dependence
//! distance is component-wise non-negative over `(T, K')`, which buys
//! two things at once:
//!
//! * **sequential legality** — tiles may execute band-block-major
//!   (each band of skewed planes carried through all its time blocks,
//!   the cross-timestep reuse the schedule exists for), and
//! * **wavefront parallelism** — tiles on one anti-diagonal of the
//!   `(TT, BB)` tile grid ([`SkewedBlock::wavefront`]) are related by no
//!   dependence *and no memory conflict*, so they run concurrently on
//!   scoped threads with a barrier per wavefront.
//!
//! The concurrency argument is enforced, not assumed: each wavefront
//! computes a plane-ownership map (the tile that writes a `(buffer, K)`
//! plane owns it exclusively; everything else is shared read-only), and
//! the executor panics if any tile asks for a plane the map says it may
//! not touch. Every dependence that could make two same-wave tiles share
//! a plane has a component-wise ordered skewed distance, which would put
//! the tiles on different anti-diagonals — so for the certified schedule
//! the panic is unreachable (`timeskew::tests::
//! wavefront_blocks_are_dependence_free` checks the block geometry
//! directly).
//!
//! Row updates go through [`rowexec`] — the same
//! bounds-check-free kernels as the spatial engine — so every schedule
//! here is **bitwise identical** to [`mod@reference`]
//! iterated `steps` times, for any tile shape and any thread count
//! (`tests/time_tiled_golden.rs` is the gate). Red-black is scheduled at
//! *colour-pass* granularity: pass `p = 2t + colour`, so a time tile of
//! `st` full steps spans `2 * st` passes and the half-step dependences
//! (`DepKind::Flow (1, ·)` between colours, `(2, 0, 0, 0)` for the
//! centre self-dependence) are honoured by the same skew.

use tiling3d_cachesim::AccessSink;
use tiling3d_grid::Array3;

use crate::backend::{self, Backend, ExecBackend, LaneEngine, Resolved, RowEngine, RowKernel};
use crate::redblack;
use crate::reference;
use crate::rowexec;
use crate::timeskew::{skewed_blocks, SkewedBlock};

/// A temporal tile: `st` time steps by `sk` skewed K planes.
///
/// For red-black, `st` counts *full* steps (red + black); the engine
/// schedules `2 * st` colour passes per time block internally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeTile {
    /// Time-block extent in steps (clamped to the step count).
    pub st: usize,
    /// Skewed K-band extent in planes (clamped to the band).
    pub sk: usize,
}

/// The geometry every plane-level routine needs, hoisted once per run.
#[derive(Clone, Copy)]
struct Geom {
    ni: usize,
    nj: usize,
    nk: usize,
    di: usize,
    ps: usize,
}

fn geom_of(a: &Array3<f64>) -> Geom {
    Geom {
        ni: a.ni(),
        nj: a.nj(),
        nk: a.nk(),
        di: a.di(),
        ps: a.plane_stride(),
    }
}

/// Borrows the ping-pong pair as `(source of step t, destination)`.
fn split3(bufs: &mut [Array3<f64>; 2], t: usize) -> (&Array3<f64>, &mut Array3<f64>) {
    let (a, b) = bufs.split_at_mut(1);
    if t.is_multiple_of(2) {
        (&a[0], &mut b[0])
    } else {
        (&b[0], &mut a[0])
    }
}

/// Groups blocks by anti-diagonal; within a wave the sequential order
/// (ascending band block) is kept so work distribution is deterministic.
fn wavefronts(blocks: &[SkewedBlock]) -> Vec<Vec<SkewedBlock>> {
    let mut waves: Vec<Vec<SkewedBlock>> = Vec::new();
    for b in blocks {
        let w = b.wavefront();
        if waves.len() <= w {
            waves.resize_with(w + 1, Vec::new);
        }
        waves[w].push(*b);
    }
    waves
}

/// Looks a source plane up in a tile's owned set, falling back to the
/// wavefront's shared read-only pool. A `None` in both places means the
/// plane is owned by *another* tile of the same wavefront — a dependence
/// the skew proves cannot exist — so this panics rather than race.
fn read_plane<'a>(
    own: &'a [(usize, &'a mut [f64])],
    shared: &'a [Option<&'a [f64]>],
    key: usize,
) -> &'a [f64] {
    if let Some((_, p)) = own.iter().find(|&&(k, _)| k == key) {
        return &p[..];
    }
    shared[key].expect("wavefront isolation violated: source plane owned by a concurrent tile")
}

/// Deals per-tile work units round-robin across `workers` groups.
fn deal<T>(work: Vec<T>, workers: usize) -> Vec<Vec<T>> {
    let mut groups: Vec<Vec<T>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in work.into_iter().enumerate() {
        groups[i % workers].push(item);
    }
    groups
}

// ---------------------------------------------------------------------------
// Jacobi
// ---------------------------------------------------------------------------

/// Runs `steps` reference Jacobi sweeps over the ping-pong pair. The
/// result lives in `bufs[steps % 2]`; this is the executable
/// specification the time-tiled schedule is held bitwise-equal to.
///
/// # Panics
/// Panics if the two buffers differ in extents.
pub fn jacobi_steps_reference(bufs: &mut [Array3<f64>; 2], c: f64, steps: usize) {
    if bufs[0].ni() < 3 || bufs[0].nj() < 3 || bufs[0].nk() < 3 {
        return;
    }
    for t in 0..steps {
        let (src, dst) = split3(bufs, t);
        reference::jacobi3d(dst, src, c, None);
    }
}

/// Runs `steps` Jacobi sweeps through the time-skewed tile schedule,
/// wavefront-parallel across `threads` scoped threads (sequential
/// band-major order when `threads == 1`). Bitwise identical to
/// [`jacobi_steps_reference`] for any tile shape and thread count; the
/// result lives in `bufs[steps % 2]`. Boundary planes are never written,
/// so the two buffers must agree on them (as in any ping-pong setup).
///
/// # Panics
/// Panics if a tile extent or `threads` is zero, or the buffers differ
/// in extents.
pub fn jacobi_time_tiled(
    bufs: &mut [Array3<f64>; 2],
    c: f64,
    steps: usize,
    tile: TimeTile,
    threads: usize,
) {
    jacobi_time_tiled_with::<RowEngine>(bufs, c, steps, tile, threads);
}

/// [`jacobi_time_tiled`] with the execution backend chosen at runtime.
pub fn jacobi_time_tiled_backend(
    bufs: &mut [Array3<f64>; 2],
    c: f64,
    steps: usize,
    tile: TimeTile,
    threads: usize,
    sel: ExecBackend,
) {
    match backend::resolve(sel, RowKernel::Jacobi3d) {
        Resolved::Row => jacobi_time_tiled_with::<RowEngine>(bufs, c, steps, tile, threads),
        Resolved::Lane => jacobi_time_tiled_with::<LaneEngine>(bufs, c, steps, tile, threads),
    }
}

/// [`jacobi_time_tiled`] generic over the row-segment execution
/// [`Backend`].
pub fn jacobi_time_tiled_with<B: Backend>(
    bufs: &mut [Array3<f64>; 2],
    c: f64,
    steps: usize,
    tile: TimeTile,
    threads: usize,
) {
    assert!(tile.st > 0 && tile.sk > 0, "tile extents must be nonzero");
    assert!(threads > 0, "threads must be at least 1");
    assert_eq!(
        (
            bufs[0].ni(),
            bufs[0].nj(),
            bufs[0].nk(),
            bufs[0].di(),
            bufs[0].dj()
        ),
        (
            bufs[1].ni(),
            bufs[1].nj(),
            bufs[1].nk(),
            bufs[1].di(),
            bufs[1].dj()
        ),
        "ping-pong buffers must share logical and allocated extents"
    );
    let g = geom_of(&bufs[0]);
    if steps == 0 || g.ni < 3 || g.nj < 3 || g.nk < 3 {
        return;
    }
    let blocks = skewed_blocks(steps, 1, g.nk - 2, tile.st, tile.sk);
    let span = tiling3d_obs::span("timetile:jacobi");
    span.add("steps", steps as u64);
    span.add("tiles", blocks.len() as u64);
    if threads == 1 {
        for blk in &blocks {
            jacobi_block_seq::<B>(bufs, c, blk, g, span.id());
        }
    } else {
        for wave in wavefronts(&blocks) {
            run_jacobi_wave::<B>(bufs, c, &wave, g, threads, span.id());
        }
    }
    let per_step = (g.ni - 2) as u64 * (g.nj - 2) as u64 * (g.nk - 2) as u64;
    rowexec::note_sweep(per_step * steps as u64, crate::jacobi3d::FLOPS_PER_POINT);
}

/// One tile in the sequential band-major order: global indexing, the
/// ping-pong split re-borrowed per point.
fn jacobi_block_seq<B: Backend>(
    bufs: &mut [Array3<f64>; 2],
    c: f64,
    blk: &SkewedBlock,
    g: Geom,
    parent: u64,
) {
    let span = tiling3d_obs::span_at("timeblock", parent);
    let mut points = 0u64;
    blk.for_each(1, g.nk - 2, |t, k| {
        let (src, dst) = split3(bufs, t);
        let (sv, dv) = (src.as_slice(), dst.as_mut_slice());
        let base = k * g.ps;
        for j in 1..=g.nj - 2 {
            let lo = base + j * g.di + 1;
            B::jacobi3d_row(
                &mut dv[lo..lo + g.ni - 2],
                &sv[lo - 1..],
                &sv[lo + 1..],
                &sv[lo - g.di..],
                &sv[lo + g.di..],
                &sv[lo - g.ps..],
                &sv[lo + g.ps..],
                c,
            );
        }
        points += (g.ni - 2) as u64 * (g.nj - 2) as u64;
    });
    span.add("points", points);
}

/// The planes a tile owns for one wavefront, keyed `buffer * nk + k`.
type OwnedPlanes<'a> = Vec<(usize, &'a mut [f64])>;

/// One wavefront of Jacobi tiles: builds the plane-ownership map, splits
/// both buffers into per-plane slices routed to their owning tile (or
/// the shared read-only pool), then runs every tile on scoped threads.
/// `thread::scope` joins at the end — the wavefront barrier.
fn run_jacobi_wave<B: Backend>(
    bufs: &mut [Array3<f64>; 2],
    c: f64,
    wave: &[SkewedBlock],
    g: Geom,
    threads: usize,
    parent: u64,
) {
    let span = tiling3d_obs::span_at("wavefront", parent);
    span.add("tiles", wave.len() as u64);
    let nk = g.nk;
    // Plane (buffer b, index k) has key b * nk + k; the tile that writes
    // it this wave owns it. Two same-wave tiles claiming one plane would
    // be a write-write conflict the skew has already excluded.
    let mut owner: Vec<Option<usize>> = vec![None; 2 * nk];
    for (bi, blk) in wave.iter().enumerate() {
        blk.for_each(1, nk - 2, |t, k| {
            let key = (t + 1) % 2 * nk + k;
            match owner[key] {
                None => owner[key] = Some(bi),
                Some(o) => assert_eq!(o, bi, "two tiles of one wavefront write plane {k}"),
            }
        });
    }
    let (left, right) = bufs.split_at_mut(1);
    let mut own: Vec<OwnedPlanes> = wave.iter().map(|_| Vec::new()).collect();
    let mut shared: Vec<Option<&[f64]>> = vec![None; 2 * nk];
    for (b, buf) in [&mut left[0], &mut right[0]].into_iter().enumerate() {
        for (k, plane) in buf.as_mut_slice().chunks_mut(g.ps).enumerate() {
            match owner[b * nk + k] {
                Some(bi) => own[bi].push((b * nk + k, plane)),
                None => {
                    let ro: &[f64] = plane;
                    shared[b * nk + k] = Some(ro);
                }
            }
        }
    }
    let work: Vec<(SkewedBlock, OwnedPlanes)> = wave.iter().copied().zip(own).collect();
    let workers = threads.min(work.len()).max(1);
    if workers == 1 {
        for (blk, mut planes) in work {
            run_jacobi_block::<B>(&blk, &mut planes, &shared, g, c, span.id());
        }
        return;
    }
    let shared_ref = &shared;
    let wid = span.id();
    std::thread::scope(|scope| {
        for group in deal(work, workers) {
            scope.spawn(move || {
                for (blk, mut planes) in group {
                    run_jacobi_block::<B>(&blk, &mut planes, shared_ref, g, c, wid);
                }
            });
        }
    });
}

/// One Jacobi tile against its owned planes: plane-local indexing, the
/// destination plane temporarily pulled out of the owned set so the
/// source planes can be read around it.
fn run_jacobi_block<B: Backend>(
    blk: &SkewedBlock,
    own: &mut Vec<(usize, &mut [f64])>,
    shared: &[Option<&[f64]>],
    g: Geom,
    c: f64,
    parent: u64,
) {
    let span = tiling3d_obs::span_at("timeblock", parent);
    let mut points = 0u64;
    let nk = g.nk;
    blk.for_each(1, nk - 2, |t, k| {
        let (sb, db) = (t % 2, (t + 1) % 2);
        let pos = own
            .iter()
            .position(|&(key, _)| key == db * nk + k)
            .expect("wavefront isolation violated: destination plane not owned by its tile");
        let (key, dst) = own.swap_remove(pos);
        {
            let d = read_plane(own, shared, sb * nk + k - 1);
            let ctr = read_plane(own, shared, sb * nk + k);
            let u = read_plane(own, shared, sb * nk + k + 1);
            for j in 1..=g.nj - 2 {
                let lo = j * g.di + 1;
                B::jacobi3d_row(
                    &mut dst[lo..lo + g.ni - 2],
                    &ctr[lo - 1..],
                    &ctr[lo + 1..],
                    &ctr[lo - g.di..],
                    &ctr[lo + g.di..],
                    &d[lo..],
                    &u[lo..],
                    c,
                );
            }
        }
        own.push((key, dst));
        points += (g.ni - 2) as u64 * (g.nj - 2) as u64;
    });
    span.add("points", points);
}

// ---------------------------------------------------------------------------
// Red-black
// ---------------------------------------------------------------------------

/// Runs `steps` reference red-black iterations (naive two-pass order) —
/// the executable specification for the time-tiled schedule.
///
/// # Panics
/// Panics unless the `I`/`J` logical extents are equal.
pub fn redblack_steps_reference(a: &mut Array3<f64>, c1: f64, c2: f64, steps: usize) {
    if a.ni() < 3 || a.nj() < 3 || a.nk() < 3 {
        return;
    }
    for _ in 0..steps {
        reference::redblack(a, c1, c2, redblack::Schedule::Naive);
    }
}

/// Runs `steps` red-black iterations through the time-skewed tile
/// schedule at colour-pass granularity (`2 * steps` passes, time blocks
/// of `2 * tile.st` passes), wavefront-parallel across `threads`.
/// Bitwise identical to [`redblack_steps_reference`] for any tile shape
/// and thread count.
///
/// # Panics
/// Panics if a tile extent or `threads` is zero, or the grid is not
/// square in `I`/`J`.
pub fn redblack_time_tiled(
    a: &mut Array3<f64>,
    c1: f64,
    c2: f64,
    steps: usize,
    tile: TimeTile,
    threads: usize,
) {
    redblack_time_tiled_with::<RowEngine>(a, c1, c2, steps, tile, threads);
}

/// [`redblack_time_tiled`] with the execution backend chosen at runtime.
pub fn redblack_time_tiled_backend(
    a: &mut Array3<f64>,
    c1: f64,
    c2: f64,
    steps: usize,
    tile: TimeTile,
    threads: usize,
    sel: ExecBackend,
) {
    match backend::resolve(sel, RowKernel::RedBlack) {
        Resolved::Row => redblack_time_tiled_with::<RowEngine>(a, c1, c2, steps, tile, threads),
        Resolved::Lane => redblack_time_tiled_with::<LaneEngine>(a, c1, c2, steps, tile, threads),
    }
}

/// [`redblack_time_tiled`] generic over the row-segment execution
/// [`Backend`].
pub fn redblack_time_tiled_with<B: Backend>(
    a: &mut Array3<f64>,
    c1: f64,
    c2: f64,
    steps: usize,
    tile: TimeTile,
    threads: usize,
) {
    assert!(tile.st > 0 && tile.sk > 0, "tile extents must be nonzero");
    assert!(threads > 0, "threads must be at least 1");
    assert!(
        a.nj() == a.ni(),
        "red-black kernel expects square I/J extents"
    );
    let g = geom_of(a);
    if steps == 0 || g.ni < 3 || g.nj < 3 || g.nk < 3 {
        return;
    }
    let blocks = skewed_blocks(2 * steps, 1, g.nk - 2, 2 * tile.st, tile.sk);
    let span = tiling3d_obs::span("timetile:redblack");
    span.add("steps", steps as u64);
    span.add("tiles", blocks.len() as u64);
    if threads == 1 {
        for blk in &blocks {
            redblack_block_seq::<B>(a, c1, c2, blk, g, span.id());
        }
    } else {
        for wave in wavefronts(&blocks) {
            run_redblack_wave::<B>(a, c1, c2, &wave, g, threads, span.id());
        }
    }
    let per_step = (g.ni - 2) as u64 * (g.nj - 2) as u64 * (g.nk - 2) as u64;
    rowexec::note_sweep(per_step * steps as u64, redblack::FLOPS_PER_POINT);
}

/// Updates one colour pass of one plane through the stride-2 row
/// kernels. `av` is the plane slice (`base` 0) or the whole array
/// (`base = k * ps`); `d`/`u` are the neighbouring source planes at the
/// same offsets.
#[allow(clippy::too_many_arguments)]
fn redblack_plane_pass<B: Backend>(
    av: &mut [f64],
    d: &[f64],
    u: &[f64],
    scratch: &mut [f64],
    g: Geom,
    base: usize,
    k: usize,
    color: usize,
    c1: f64,
    c2: f64,
) -> u64 {
    let mut points = 0u64;
    for j in 1..=g.nj - 2 {
        let i0 = 1 + (k + j + color) % 2;
        if i0 > g.ni - 2 {
            continue;
        }
        let m = (g.ni - 2 - i0) / 2 + 1;
        let lo = base + j * g.di + i0;
        B::redblack_row(
            &mut scratch[..m],
            &av[lo..],
            &av[lo - 1..],
            &av[lo - g.di..],
            &av[lo + 1..],
            &av[lo + g.di..],
            &d[lo..],
            &u[lo..],
            c1,
            c2,
        );
        rowexec::scatter_stride2(&mut av[lo..], &scratch[..m]);
        points += m as u64;
    }
    points
}

/// One red-black tile in the sequential band-major order (global
/// indexing, in place).
fn redblack_block_seq<B: Backend>(
    a: &mut Array3<f64>,
    c1: f64,
    c2: f64,
    blk: &SkewedBlock,
    g: Geom,
    parent: u64,
) {
    let span = tiling3d_obs::span_at("timeblock", parent);
    let mut points = 0u64;
    let mut scratch = vec![0.0; g.ni / 2 + 1];
    let av = a.as_mut_slice();
    blk.for_each(1, g.nk - 2, |p, k| {
        // Split the in-place array around plane k so its down/up
        // neighbours can be read while the plane is written; all three
        // use the same plane-local offsets.
        let base = k * g.ps;
        let (head, tail) = av.split_at_mut(base);
        let (plane, up) = tail.split_at_mut(g.ps);
        let down = &head[base - g.ps..];
        points += redblack_plane_pass::<B>(plane, down, up, &mut scratch, g, 0, k, p % 2, c1, c2);
    });
    span.add("points", points);
}

/// One wavefront of red-black tiles: plane ownership over the single
/// in-place array, scoped threads, barrier at scope exit.
fn run_redblack_wave<B: Backend>(
    a: &mut Array3<f64>,
    c1: f64,
    c2: f64,
    wave: &[SkewedBlock],
    g: Geom,
    threads: usize,
    parent: u64,
) {
    let span = tiling3d_obs::span_at("wavefront", parent);
    span.add("tiles", wave.len() as u64);
    let nk = g.nk;
    let mut owner: Vec<Option<usize>> = vec![None; nk];
    for (bi, blk) in wave.iter().enumerate() {
        blk.for_each(1, nk - 2, |_p, k| match owner[k] {
            None => owner[k] = Some(bi),
            Some(o) => assert_eq!(o, bi, "two tiles of one wavefront write plane {k}"),
        });
    }
    let mut own: Vec<OwnedPlanes> = wave.iter().map(|_| Vec::new()).collect();
    let mut shared: Vec<Option<&[f64]>> = vec![None; nk];
    for (k, plane) in a.as_mut_slice().chunks_mut(g.ps).enumerate() {
        match owner[k] {
            Some(bi) => own[bi].push((k, plane)),
            None => {
                let ro: &[f64] = plane;
                shared[k] = Some(ro);
            }
        }
    }
    let work: Vec<(SkewedBlock, OwnedPlanes)> = wave.iter().copied().zip(own).collect();
    let workers = threads.min(work.len()).max(1);
    if workers == 1 {
        for (blk, mut planes) in work {
            run_redblack_block::<B>(&blk, &mut planes, &shared, g, c1, c2, span.id());
        }
        return;
    }
    let shared_ref = &shared;
    let wid = span.id();
    std::thread::scope(|scope| {
        for group in deal(work, workers) {
            scope.spawn(move || {
                for (blk, mut planes) in group {
                    run_redblack_block::<B>(&blk, &mut planes, shared_ref, g, c1, c2, wid);
                }
            });
        }
    });
}

/// One red-black tile against its owned planes (plane-local indexing).
fn run_redblack_block<B: Backend>(
    blk: &SkewedBlock,
    own: &mut Vec<(usize, &mut [f64])>,
    shared: &[Option<&[f64]>],
    g: Geom,
    c1: f64,
    c2: f64,
    parent: u64,
) {
    let span = tiling3d_obs::span_at("timeblock", parent);
    let mut points = 0u64;
    let mut scratch = vec![0.0; g.ni / 2 + 1];
    blk.for_each(1, g.nk - 2, |p, k| {
        let pos = own
            .iter()
            .position(|&(key, _)| key == k)
            .expect("wavefront isolation violated: destination plane not owned by its tile");
        let (key, plane) = own.swap_remove(pos);
        {
            let d = read_plane(own, shared, k - 1);
            let u = read_plane(own, shared, k + 1);
            points += redblack_plane_pass::<B>(plane, d, u, &mut scratch, g, 0, k, p % 2, c1, c2);
        }
        own.push((key, plane));
    });
    span.add("points", points);
}

// ---------------------------------------------------------------------------
// Address traces — the cachesim forms of the same schedules
// ---------------------------------------------------------------------------

fn pick(bases: [u64; 2], t: usize) -> (u64, u64) {
    if t.is_multiple_of(2) {
        (bases[0], bases[1])
    } else {
        (bases[1], bases[0])
    }
}

/// Per-point Jacobi accesses for one `(j, k)` row: six neighbour reads
/// from `src`, one write to `dst` — operand order of
/// [`rowexec::jacobi3d_row`].
fn trace_jacobi_row<S: AccessSink>(g: Geom, src: u64, dst: u64, j: usize, k: usize, sink: &mut S) {
    let (dii, psi) = (g.di as i64, g.ps as i64);
    for i in 1..=g.ni - 2 {
        let idx = (i + j * g.di + k * g.ps) as i64;
        let at = |base: u64, off: i64| base.wrapping_add(((idx + off) * 8) as u64);
        sink.read(at(src, -1));
        sink.read(at(src, 1));
        sink.read(at(src, -dii));
        sink.read(at(src, dii));
        sink.read(at(src, -psi));
        sink.read(at(src, psi));
        sink.write(at(dst, 0));
    }
}

/// Trace of `steps` naive Jacobi sweeps over ping-pong buffers at the
/// given byte bases (full sweep per step).
pub fn trace_jacobi_steps<S: AccessSink>(
    g_arr: &Array3<f64>,
    steps: usize,
    bases: [u64; 2],
    sink: &mut S,
) {
    let g = geom_of(g_arr);
    if g.ni < 3 || g.nj < 3 || g.nk < 3 {
        return;
    }
    for t in 0..steps {
        let (src, dst) = pick(bases, t);
        for k in 1..=g.nk - 2 {
            for j in 1..=g.nj - 2 {
                trace_jacobi_row(g, src, dst, j, k, sink);
            }
        }
    }
}

/// Trace of the same `steps` sweeps through the time-skewed tile
/// schedule (sequential band-major order — the order `threads == 1`
/// executes and the cache model predicts).
pub fn trace_jacobi_time_tiled<S: AccessSink>(
    g_arr: &Array3<f64>,
    steps: usize,
    tile: TimeTile,
    bases: [u64; 2],
    sink: &mut S,
) {
    let g = geom_of(g_arr);
    if steps == 0 || g.ni < 3 || g.nj < 3 || g.nk < 3 {
        return;
    }
    crate::timeskew::for_each_skewed(steps, 1, g.nk - 2, tile.st, tile.sk, |t, k| {
        let (src, dst) = pick(bases, t);
        for j in 1..=g.nj - 2 {
            trace_jacobi_row(g, src, dst, j, k, sink);
        }
    });
}

/// Per-point red-black accesses for one colour pass of one `(j, k)` row
/// (stride-2): centre + six neighbour reads, one write, in
/// [`rowexec::redblack_row`] operand order.
fn trace_redblack_row<S: AccessSink>(
    g: Geom,
    base: u64,
    j: usize,
    k: usize,
    color: usize,
    sink: &mut S,
) {
    let (dii, psi) = (g.di as i64, g.ps as i64);
    let i0 = 1 + (k + j + color) % 2;
    if i0 > g.ni - 2 {
        return;
    }
    let mut i = i0;
    while i <= g.ni - 2 {
        let idx = (i + j * g.di + k * g.ps) as i64;
        let at = |off: i64| base.wrapping_add(((idx + off) * 8) as u64);
        sink.read(at(0));
        sink.read(at(-1));
        sink.read(at(-dii));
        sink.read(at(1));
        sink.read(at(dii));
        sink.read(at(-psi));
        sink.read(at(psi));
        sink.write(at(0));
        i += 2;
    }
}

/// Trace of `steps` naive red-black iterations (red pass over the whole
/// grid, then black) at byte base `base`.
pub fn trace_redblack_steps<S: AccessSink>(
    g_arr: &Array3<f64>,
    steps: usize,
    base: u64,
    sink: &mut S,
) {
    let g = geom_of(g_arr);
    if g.ni < 3 || g.nj < 3 || g.nk < 3 {
        return;
    }
    for _ in 0..steps {
        for color in 0..2 {
            for k in 1..=g.nk - 2 {
                for j in 1..=g.nj - 2 {
                    trace_redblack_row(g, base, j, k, color, sink);
                }
            }
        }
    }
}

/// Trace of the time-skewed red-black schedule at colour-pass
/// granularity (sequential band-major order).
pub fn trace_redblack_time_tiled<S: AccessSink>(
    g_arr: &Array3<f64>,
    steps: usize,
    tile: TimeTile,
    base: u64,
    sink: &mut S,
) {
    let g = geom_of(g_arr);
    if steps == 0 || g.ni < 3 || g.nj < 3 || g.nk < 3 {
        return;
    }
    crate::timeskew::for_each_skewed(2 * steps, 1, g.nk - 2, 2 * tile.st, tile.sk, |p, k| {
        for j in 1..=g.nj - 2 {
            trace_redblack_row(g, base, j, k, p % 2, sink);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiling3d_cachesim::CountingSink;
    use tiling3d_grid::fill_random;

    fn jacobi_bufs(ni: usize, nj: usize, nk: usize, seed: u64) -> [Array3<f64>; 2] {
        let mut b0 = Array3::new(ni, nj, nk);
        fill_random(&mut b0, seed);
        let b1 = b0.clone(); // boundaries must match across buffers
        [b0, b1]
    }

    #[test]
    fn jacobi_time_tiled_matches_reference_smoke() {
        for threads in [1, 3] {
            let mut a = jacobi_bufs(12, 10, 9, 42);
            let mut b = jacobi_bufs(12, 10, 9, 42);
            let steps = 5;
            jacobi_steps_reference(&mut a, 0.17, steps);
            jacobi_time_tiled(&mut b, 0.17, steps, TimeTile { st: 2, sk: 3 }, threads);
            let fin = steps % 2;
            assert!(a[fin].logical_eq(&b[fin]), "threads={threads}");
        }
    }

    #[test]
    fn redblack_time_tiled_matches_reference_smoke() {
        for threads in [1, 4] {
            let mut a = Array3::new(11, 11, 8);
            fill_random(&mut a, 7);
            let mut b = a.clone();
            let steps = 4;
            redblack_steps_reference(&mut a, 0.4, 0.1, steps);
            redblack_time_tiled(&mut b, 0.4, 0.1, steps, TimeTile { st: 2, sk: 2 }, threads);
            assert!(a.logical_eq(&b), "threads={threads}");
        }
    }

    #[test]
    fn degenerate_grids_are_untouched() {
        for nk in [1usize, 2] {
            let mut b = jacobi_bufs(8, 8, nk, 5);
            let orig = [b[0].clone(), b[1].clone()];
            jacobi_time_tiled(&mut b, 0.2, 3, TimeTile { st: 1, sk: 1 }, 2);
            assert!(b[0].logical_eq(&orig[0]) && b[1].logical_eq(&orig[1]));
        }
        let mut a = Array3::new(2, 2, 6);
        fill_random(&mut a, 9);
        let orig = a.clone();
        redblack_time_tiled(&mut a, 0.4, 0.1, 2, TimeTile { st: 1, sk: 1 }, 2);
        assert!(a.logical_eq(&orig));
    }

    #[test]
    fn trace_volumes_match_the_naive_schedule() {
        let arr = Array3::<f64>::new(10, 9, 8);
        let bases = [0u64, (arr.len() * 8) as u64];
        let steps = 4;
        let mut naive = CountingSink::default();
        trace_jacobi_steps(&arr, steps, bases, &mut naive);
        let mut tiled = CountingSink::default();
        trace_jacobi_time_tiled(&arr, steps, TimeTile { st: 2, sk: 3 }, bases, &mut tiled);
        assert_eq!(naive.reads, tiled.reads);
        assert_eq!(naive.writes, tiled.writes);
        assert_eq!(naive.writes, (steps * 8 * 7 * 6) as u64);

        let sq = Array3::<f64>::new(9, 9, 8);
        let mut naive = CountingSink::default();
        trace_redblack_steps(&sq, steps, 0, &mut naive);
        let mut tiled = CountingSink::default();
        trace_redblack_time_tiled(&sq, steps, TimeTile { st: 1, sk: 2 }, 0, &mut tiled);
        assert_eq!(naive.reads, tiled.reads);
        assert_eq!(naive.writes, tiled.writes);
        assert_eq!(naive.writes, (steps * 7 * 7 * 6) as u64);
    }

    #[test]
    #[should_panic]
    fn zero_tile_rejected() {
        let mut b = jacobi_bufs(8, 8, 8, 1);
        jacobi_time_tiled(&mut b, 0.2, 2, TimeTile { st: 0, sk: 4 }, 1);
    }
}
