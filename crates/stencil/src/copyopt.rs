//! Tile copying for stencils — implemented so Section 3.1's *negative*
//! result can be demonstrated rather than asserted.
//!
//! The classical conflict-avoidance technique (Lam-Rothberg-Wolf; Temam,
//! Granston & Jalby) copies each tile into a contiguous buffer, where it
//! cannot self-interfere. For stencils the paper argues this never pays:
//! each copied element is reused only `O(1)` times, so "copy operations
//! comprise a large, constant fraction of the data accesses". This module
//! implements the copying variant of tiled 3D Jacobi — a rolling
//! three-plane window buffer per tile — with compute and trace forms, and
//! the tests check both that results are bitwise identical and that the
//! measured copy overhead matches `tiling3d_core::copymodel`'s prediction.

use tiling3d_cachesim::AccessSink;
use tiling3d_grid::Array3;
use tiling3d_loopnest::TileDims;

use crate::backend::{self, Backend, ExecBackend, LaneEngine, Resolved, RowEngine, RowKernel};

/// Tiled 3D Jacobi where each tile's `(TI+2) x (TJ+2) x 3` input window is
/// copied into a contiguous rolling buffer before the tile plane is
/// computed. Results are bitwise identical to `jacobi3d::sweep`.
///
/// # Panics
/// Panics if extents mismatch.
pub fn sweep_tiled_copying(a: &mut Array3<f64>, b: &Array3<f64>, c: f64, tile: TileDims) {
    sweep_tiled_copying_with::<RowEngine>(a, b, c, tile);
}

/// [`sweep_tiled_copying`] with the execution backend chosen at runtime.
pub fn sweep_tiled_copying_backend(
    a: &mut Array3<f64>,
    b: &Array3<f64>,
    c: f64,
    tile: TileDims,
    sel: ExecBackend,
) {
    match backend::resolve(sel, RowKernel::Jacobi3d) {
        Resolved::Row => sweep_tiled_copying_with::<RowEngine>(a, b, c, tile),
        Resolved::Lane => sweep_tiled_copying_with::<LaneEngine>(a, b, c, tile),
    }
}

/// [`sweep_tiled_copying`] generic over the row-segment execution
/// [`Backend`].
pub fn sweep_tiled_copying_with<B: Backend>(
    a: &mut Array3<f64>,
    b: &Array3<f64>,
    c: f64,
    tile: TileDims,
) {
    assert_eq!(
        (a.ni(), a.nj(), a.nk(), a.di(), a.dj()),
        (b.ni(), b.nj(), b.nk(), b.di(), b.dj())
    );
    let (ni, nj, nk) = (a.ni(), a.nj(), a.nk());
    let (di, ps) = (b.di(), b.plane_stride());
    let (i1, j1, k1) = (ni - 2, nj - 2, nk - 2);
    let (ti, tj) = (tile.ti, tile.tj);
    let (bw, bh) = (ti + 2, tj + 2); // buffer plane extents (with halo)
    let bplane = bw * bh;
    let mut buf = vec![0.0f64; bplane * 3];
    let bv = b.as_slice();
    let av = a.as_mut_slice();

    let mut jj = 1usize;
    while jj <= j1 {
        let j_hi = (jj + tj - 1).min(j1);
        let mut ii = 1usize;
        while ii <= i1 {
            let i_hi = (ii + ti - 1).min(i1);
            // Pre-copy planes k = 0 and k = 1 of the window.
            for (slot, k) in [(0usize, 0usize), (1, 1)] {
                copy_plane(
                    &mut buf[slot * bplane..(slot + 1) * bplane],
                    bv,
                    ii,
                    jj,
                    k,
                    i_hi,
                    j_hi,
                    di,
                    ps,
                    bw,
                );
            }
            for k in 1..=k1 {
                // Roll in plane k+1.
                let slot = (k + 1) % 3;
                copy_plane(
                    &mut buf[slot * bplane..(slot + 1) * bplane],
                    bv,
                    ii,
                    jj,
                    k + 1,
                    i_hi,
                    j_hi,
                    di,
                    ps,
                    bw,
                );
                let (lo, mid, hi) = ((k - 1) % 3, k % 3, (k + 1) % 3);
                let len = i_hi - ii + 1;
                for j in jj..=j_hi {
                    let lj = j - jj + 1; // local (haloed) j
                                         // Local row start (li = 1) in the mid buffer plane.
                    let llo = mid * bplane + 1 + lj * bw;
                    let out = ii + j * di + k * ps;
                    B::jacobi3d_row(
                        &mut av[out..out + len],
                        &buf[llo - 1..],
                        &buf[llo + 1..],
                        &buf[llo - bw..],
                        &buf[llo + bw..],
                        &buf[lo * bplane + 1 + lj * bw..],
                        &buf[hi * bplane + 1 + lj * bw..],
                        c,
                    );
                }
            }
            ii += ti;
        }
        jj += tj;
    }
}

#[allow(clippy::too_many_arguments)]
fn copy_plane(
    dst: &mut [f64],
    bv: &[f64],
    ii: usize,
    jj: usize,
    k: usize,
    i_hi: usize,
    j_hi: usize,
    di: usize,
    ps: usize,
    bw: usize,
) {
    // Copy rows [ii-1 ..= i_hi+1] x [jj-1 ..= j_hi+1] of plane k, one
    // contiguous row at a time.
    let w = i_hi - ii + 3;
    for j in (jj - 1)..=(j_hi + 1) {
        let lj = j - (jj - 1);
        let src = (ii - 1) + j * di + k * ps;
        dst[lj * bw..lj * bw + w].copy_from_slice(&bv[src..src + w]);
    }
}

/// Trace of the copying schedule: per rolled-in plane, each haloed window
/// row is one batched [`AccessSink::read_run`] over the `B` row followed
/// by one batched [`AccessSink::write_run`] into the buffer (placed just
/// after the two arrays) — matching [`copy_plane`]'s `copy_from_slice`
/// rows; per computed point, six buffer reads and the `A` store. Layout
/// matches [`crate::jacobi3d::trace`] with the buffer appended.
pub fn trace_tiled_copying<S: AccessSink>(
    ni: usize,
    nj: usize,
    nk: usize,
    di: usize,
    dj: usize,
    tile: TileDims,
    sink: &mut S,
) {
    assert!(di >= ni && dj >= nj);
    let ps = di * dj;
    let a_base = 0u64;
    let b_base = (ps * nk * 8) as u64;
    let buf_base = 2 * b_base;
    let (i1, j1, k1) = (ni - 2, nj - 2, nk - 2);
    let (ti, tj) = (tile.ti, tile.tj);
    let (bw, bh) = (ti + 2, tj + 2);
    let bplane = bw * bh;

    let mut jj = 1usize;
    while jj <= j1 {
        let j_hi = (jj + tj - 1).min(j1);
        let mut ii = 1usize;
        while ii <= i1 {
            let i_hi = (ii + ti - 1).min(i1);
            let trace_copy = |k: usize, slot: usize, sink: &mut S| {
                let w = i_hi - ii + 3;
                for j in (jj - 1)..=(j_hi + 1) {
                    let lj = j - (jj - 1);
                    let src = (ii - 1) + j * di + k * ps;
                    sink.read_run(b_base + (src * 8) as u64, 8, w);
                    sink.write_run(buf_base + ((slot * bplane + lj * bw) * 8) as u64, 8, w);
                }
            };
            trace_copy(0, 0, sink);
            trace_copy(1, 1, sink);
            for k in 1..=k1 {
                trace_copy(k + 1, (k + 1) % 3, sink);
                let (lo, mid, hi) = ((k - 1) % 3, k % 3, (k + 1) % 3);
                for j in jj..=j_hi {
                    let lj = j - jj + 1;
                    for i in ii..=i_hi {
                        let li = i - ii + 1;
                        let lidx = li + lj * bw;
                        let at =
                            |slot: usize, idx: usize| buf_base + ((slot * bplane + idx) * 8) as u64;
                        sink.read(at(mid, lidx - 1));
                        sink.read(at(mid, lidx + 1));
                        sink.read(at(mid, lidx - bw));
                        sink.read(at(mid, lidx + bw));
                        sink.read(at(lo, lidx));
                        sink.read(at(hi, lidx));
                        sink.write(a_base + ((i + j * di + k * ps) * 8) as u64);
                    }
                }
            }
            ii += ti;
        }
        jj += tj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi3d;
    use tiling3d_cachesim::CountingSink;
    use tiling3d_core::copymodel::copy_fraction_stencil;
    use tiling3d_grid::fill_random;
    use tiling3d_loopnest::StencilShape;

    #[test]
    fn copying_schedule_is_bitwise_identical() {
        for &(n, ti, tj) in &[(12usize, 4usize, 3usize), (17, 5, 5), (10, 100, 100)] {
            let mut b = Array3::new(n, n, n);
            fill_random(&mut b, 23);
            let mut plain = Array3::new(n, n, n);
            jacobi3d::sweep(&mut plain, &b, 1.0 / 6.0);
            let mut copied = Array3::new(n, n, n);
            sweep_tiled_copying(&mut copied, &b, 1.0 / 6.0, TileDims::new(ti, tj));
            assert!(plain.logical_eq(&copied), "n={n} tile=({ti},{tj})");
        }
    }

    #[test]
    fn copy_overhead_matches_the_analytic_model() {
        // Interior-only tiles (no boundary truncation) so the closed form
        // applies exactly: n-2 divisible by ti, tj.
        let (n, ti, tj) = (34usize, 8usize, 8usize);
        let mut plain = CountingSink::default();
        jacobi3d::trace(n, n, n, n, n, Some(TileDims::new(ti, tj)), &mut plain);
        let mut copying = CountingSink::default();
        trace_tiled_copying(n, n, n, n, n, TileDims::new(ti, tj), &mut copying);
        let extra = (copying.reads + copying.writes) as f64 - (plain.reads + plain.writes) as f64;
        let measured = extra / (copying.reads + copying.writes) as f64;
        let predicted = copy_fraction_stencil(&StencilShape::jacobi3d(), ti, tj);
        // The model ignores the two warm-up planes per tile; allow slack.
        assert!(
            (measured - predicted).abs() < 0.05,
            "measured {measured:.3} vs predicted {predicted:.3}"
        );
        // And the paper's point: the overhead is large.
        assert!(measured > 0.15);
    }

    #[test]
    fn copying_increases_accesses_but_buffer_is_tiny() {
        let (n, ti, tj) = (20usize, 6usize, 4usize);
        let mut c = CountingSink::default();
        trace_tiled_copying(n, n, n, n, n, TileDims::new(ti, tj), &mut c);
        let mut p = CountingSink::default();
        jacobi3d::trace(n, n, n, n, n, Some(TileDims::new(ti, tj)), &mut p);
        assert!(c.reads + c.writes > p.reads + p.writes);
    }
}
