//! The execution-backend layer: *how* a certified plan's row segments
//! run, abstracted from *which* rows run in *what order*.
//!
//! Every sweep in this crate decomposes its (possibly tiled, skewed, or
//! time-blocked) schedule into row segments and hands each one to a
//! [`Backend`] — a compile-time strategy type with one associated
//! function per row kernel. Two backends exist:
//!
//! * [`RowEngine`] — the original row-segment path
//!   ([`rowexec`](crate::rowexec)): pre-sliced operand rows the compiler
//!   autovectorizes. Unchanged semantics and codegen.
//! * [`LaneStrategy`]`<LANES, UNROLL>` — the explicit-lane path
//!   ([`laneexec`](crate::laneexec)): each unit-stride segment processed
//!   as safe chunked `[f64; LANES]` blocks with a compile-time lane
//!   width and unroll factor. [`LaneEngine`] is the tuned default
//!   instantiation.
//!
//! Both are **bitwise identical** to [`reference`](crate::reference) for
//! every kernel, schedule, size, padding and thread count — the lane
//! kernels vectorize across `i` and keep the reference accumulation
//! order within each point, so backend choice is purely a speed knob
//! (`tests/backend_golden.rs` is the gate). Callers pick a backend
//! statically (`sweep_with::<B>`) or at runtime through
//! [`ExecBackend`] (re-exported from `tiling3d_core::api`), where
//! [`ExecBackend::Auto`] resolves per row kernel from a one-shot
//! measured probe ([`resolve`]).

use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use tiling3d_core::api::ExecBackend;

use crate::laneexec;
use crate::resid::Coeffs;
use crate::rowexec::{self, Rows9};

/// One execution backend: the five row kernels every schedule in this
/// crate is built from, as associated functions so dispatch is static
/// and the row loops monomorphize per backend.
///
/// Implementations must be bitwise identical to
/// [`reference`](crate::reference) — same per-point expression, same
/// operand and accumulation order within each point.
#[allow(clippy::too_many_arguments)]
pub trait Backend {
    /// Backend name as reported in spans, payloads and bench rows.
    const NAME: &'static str;

    /// See [`rowexec::jacobi3d_row`].
    fn jacobi3d_row(
        dst: &mut [f64],
        w: &[f64],
        e: &[f64],
        n: &[f64],
        s: &[f64],
        d: &[f64],
        u: &[f64],
        c: f64,
    );

    /// See [`rowexec::jacobi2d_row`].
    fn jacobi2d_row(dst: &mut [f64], w: &[f64], e: &[f64], n: &[f64], s: &[f64], c: f64);

    /// See [`rowexec::resid_row`].
    fn resid_row(dst: &mut [f64], v: &[f64], rows: Rows9<'_>, c: &Coeffs);

    /// See [`rowexec::redblack_row`].
    fn redblack_row(
        scratch: &mut [f64],
        ctr: &[f64],
        w: &[f64],
        n: &[f64],
        e: &[f64],
        s: &[f64],
        d: &[f64],
        u: &[f64],
        c1: f64,
        c2: f64,
    );

    /// See [`rowexec::redblack2d_row`].
    fn redblack2d_row(
        scratch: &mut [f64],
        ctr: &[f64],
        w: &[f64],
        n: &[f64],
        e: &[f64],
        s: &[f64],
        c1: f64,
        c2: f64,
    );
}

/// The autovectorized row-segment engine — delegates to
/// [`rowexec`](crate::rowexec) unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowEngine;

impl Backend for RowEngine {
    const NAME: &'static str = "row";

    #[inline(always)]
    fn jacobi3d_row(
        dst: &mut [f64],
        w: &[f64],
        e: &[f64],
        n: &[f64],
        s: &[f64],
        d: &[f64],
        u: &[f64],
        c: f64,
    ) {
        rowexec::jacobi3d_row(dst, w, e, n, s, d, u, c);
    }

    #[inline(always)]
    fn jacobi2d_row(dst: &mut [f64], w: &[f64], e: &[f64], n: &[f64], s: &[f64], c: f64) {
        rowexec::jacobi2d_row(dst, w, e, n, s, c);
    }

    #[inline(always)]
    fn resid_row(dst: &mut [f64], v: &[f64], rows: Rows9<'_>, c: &Coeffs) {
        rowexec::resid_row(dst, v, rows, c);
    }

    #[inline(always)]
    fn redblack_row(
        scratch: &mut [f64],
        ctr: &[f64],
        w: &[f64],
        n: &[f64],
        e: &[f64],
        s: &[f64],
        d: &[f64],
        u: &[f64],
        c1: f64,
        c2: f64,
    ) {
        rowexec::redblack_row(scratch, ctr, w, n, e, s, d, u, c1, c2);
    }

    #[inline(always)]
    fn redblack2d_row(
        scratch: &mut [f64],
        ctr: &[f64],
        w: &[f64],
        n: &[f64],
        e: &[f64],
        s: &[f64],
        c1: f64,
        c2: f64,
    ) {
        rowexec::redblack2d_row(scratch, ctr, w, n, e, s, c1, c2);
    }
}

/// The explicit-lane engine with compile-time lane width and unroll
/// factor (microhh `TilingStrategy`-style) — delegates to
/// [`laneexec`](crate::laneexec). Both parameters must be nonzero.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaneStrategy<const LANES: usize, const UNROLL: usize>;

impl<const LANES: usize, const UNROLL: usize> Backend for LaneStrategy<LANES, UNROLL> {
    const NAME: &'static str = "lane";

    #[inline(always)]
    fn jacobi3d_row(
        dst: &mut [f64],
        w: &[f64],
        e: &[f64],
        n: &[f64],
        s: &[f64],
        d: &[f64],
        u: &[f64],
        c: f64,
    ) {
        laneexec::jacobi3d_row::<LANES, UNROLL>(dst, w, e, n, s, d, u, c);
    }

    #[inline(always)]
    fn jacobi2d_row(dst: &mut [f64], w: &[f64], e: &[f64], n: &[f64], s: &[f64], c: f64) {
        laneexec::jacobi2d_row::<LANES, UNROLL>(dst, w, e, n, s, c);
    }

    #[inline(always)]
    fn resid_row(dst: &mut [f64], v: &[f64], rows: Rows9<'_>, c: &Coeffs) {
        laneexec::resid_row::<LANES, UNROLL>(dst, v, rows, c);
    }

    #[inline(always)]
    fn redblack_row(
        scratch: &mut [f64],
        ctr: &[f64],
        w: &[f64],
        n: &[f64],
        e: &[f64],
        s: &[f64],
        d: &[f64],
        u: &[f64],
        c1: f64,
        c2: f64,
    ) {
        laneexec::redblack_row::<LANES, UNROLL>(scratch, ctr, w, n, e, s, d, u, c1, c2);
    }

    #[inline(always)]
    fn redblack2d_row(
        scratch: &mut [f64],
        ctr: &[f64],
        w: &[f64],
        n: &[f64],
        e: &[f64],
        s: &[f64],
        c1: f64,
        c2: f64,
    ) {
        laneexec::redblack2d_row::<LANES, UNROLL>(scratch, ctr, w, n, e, s, c1, c2);
    }
}

/// The tuned lane engine: per row-kernel family, the
/// [`LaneStrategy`] instantiation that measured fastest (the issue's
/// "selected per kernel" knob — one lane width does not fit all five
/// stencils, e.g. the stride-2 red-black gather prefers narrow
/// unrolled-once lanes while RESID's 27-point body wants unroll depth
/// to hide its three serial shell-sum chains).
///
/// Like every backend it is bitwise identical to the row engine; the
/// per-kernel picks only move time.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaneEngine;

impl Backend for LaneEngine {
    const NAME: &'static str = "lane";

    #[inline(always)]
    fn jacobi3d_row(
        dst: &mut [f64],
        w: &[f64],
        e: &[f64],
        n: &[f64],
        s: &[f64],
        d: &[f64],
        u: &[f64],
        c: f64,
    ) {
        LaneStrategy::<8, 2>::jacobi3d_row(dst, w, e, n, s, d, u, c);
    }

    #[inline(always)]
    fn jacobi2d_row(dst: &mut [f64], w: &[f64], e: &[f64], n: &[f64], s: &[f64], c: f64) {
        LaneStrategy::<4, 3>::jacobi2d_row(dst, w, e, n, s, c);
    }

    #[inline(always)]
    fn resid_row(dst: &mut [f64], v: &[f64], rows: Rows9<'_>, c: &Coeffs) {
        LaneStrategy::<4, 4>::resid_row(dst, v, rows, c);
    }

    #[inline(always)]
    fn redblack_row(
        scratch: &mut [f64],
        ctr: &[f64],
        w: &[f64],
        n: &[f64],
        e: &[f64],
        s: &[f64],
        d: &[f64],
        u: &[f64],
        c1: f64,
        c2: f64,
    ) {
        LaneStrategy::<4, 1>::redblack_row(scratch, ctr, w, n, e, s, d, u, c1, c2);
    }

    #[inline(always)]
    fn redblack2d_row(
        scratch: &mut [f64],
        ctr: &[f64],
        w: &[f64],
        n: &[f64],
        e: &[f64],
        s: &[f64],
        c1: f64,
        c2: f64,
    ) {
        LaneStrategy::<4, 1>::redblack2d_row(scratch, ctr, w, n, e, s, c1, c2);
    }
}

/// The row-kernel families a backend choice is resolved per — Auto may
/// pick differently for, say, stride-2 red-black rows than for the
/// contiguous Jacobi rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RowKernel {
    /// 6-point 3D Jacobi rows.
    Jacobi3d,
    /// 4-point 2D Jacobi rows.
    Jacobi2d,
    /// 27-point RESID rows.
    Resid,
    /// Stride-2 3D red-black rows.
    RedBlack,
    /// Stride-2 2D red-black rows.
    RedBlack2d,
}

/// A concrete engine choice after [`ExecBackend::Auto`] resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resolved {
    /// Run on [`RowEngine`].
    Row,
    /// Run on [`LaneEngine`].
    Lane,
}

impl Resolved {
    /// The winning backend's name (`"row"` / `"lane"`).
    pub fn name(self) -> &'static str {
        match self {
            Resolved::Row => RowEngine::NAME,
            Resolved::Lane => "lane",
        }
    }
}

/// Resolves a requested backend to a concrete engine for one row-kernel
/// family. `Row` and `Lane` pass through; `Auto` answers from a
/// process-wide measured probe (run once, cached): each engine times a
/// synthetic hot row of the family and the faster one wins. Correctness
/// is unaffected either way — the backends are bitwise identical.
pub fn resolve(sel: ExecBackend, kernel: RowKernel) -> Resolved {
    match sel {
        ExecBackend::Row => Resolved::Row,
        ExecBackend::Lane => Resolved::Lane,
        ExecBackend::Auto => auto_choice(kernel),
    }
}

fn auto_choice(kernel: RowKernel) -> Resolved {
    static CHOICES: OnceLock<[Resolved; 5]> = OnceLock::new();
    let c = CHOICES.get_or_init(probe_all);
    c[match kernel {
        RowKernel::Jacobi3d => 0,
        RowKernel::Jacobi2d => 1,
        RowKernel::Resid => 2,
        RowKernel::RedBlack => 3,
        RowKernel::RedBlack2d => 4,
    }]
}

/// Probe geometry: a short *real* sweep per row-kernel family, at a size
/// whose working set overflows L2 so the probe sees the production mix of
/// compute and memory traffic. (An L1-hot row probe systematically
/// overstates the lane engine, which wins on in-cache compute but not on
/// bandwidth — and would make Auto pick a backend that loses at sweep
/// scale.) 3D families: 128 x 128 x 24 = 3.1 MiB per array; 2D families:
/// 1024^2 = 8 MiB per array.
const PROBE_N3: usize = 128;
const PROBE_NK: usize = 24;
const PROBE_N2: usize = 1024;

/// Times both engines for one family with *interleaved* windows (row,
/// lane, row, lane, ...), so load drift on a seconds timescale hits both
/// arms alike; best-of per arm, faster engine wins. `run` executes one
/// sweep on the given engine.
fn probe_family(run: &mut impl FnMut(Resolved)) -> Resolved {
    // Warm both arms: page in, settle the branch predictors.
    run(Resolved::Row);
    run(Resolved::Lane);
    let mut best = [Duration::MAX; 2];
    for _ in 0..6 {
        for (slot, r) in [(0usize, Resolved::Row), (1, Resolved::Lane)] {
            let t0 = Instant::now();
            run(r);
            run(r);
            best[slot] = best[slot].min(t0.elapsed());
        }
    }
    if best[1] < best[0] {
        Resolved::Lane
    } else {
        Resolved::Row
    }
}

fn probe_all() -> [Resolved; 5] {
    use tiling3d_grid::{Array2, Array3};

    use crate::redblack::Schedule;
    use crate::redblack2d::Schedule2D;
    use crate::{jacobi2d, jacobi3d, redblack, redblack2d, resid};

    let seed = |slice: &mut [f64]| {
        for (i, v) in slice.iter_mut().enumerate() {
            *v = (i % 613) as f64 / 613.0 - 0.4;
        }
    };
    let arr3 = || {
        let mut a = Array3::new(PROBE_N3, PROBE_N3, PROBE_NK);
        seed(a.as_mut_slice());
        a
    };
    let arr2 = || {
        let mut a = Array2::new(PROBE_N2, PROBE_N2);
        seed(a.as_mut_slice());
        a
    };

    let (mut a, b) = (arr3(), arr3());
    let jacobi3d = probe_family(&mut |r| match r {
        Resolved::Row => jacobi3d::sweep_with::<RowEngine>(&mut a, &b, 1.0 / 6.0),
        Resolved::Lane => jacobi3d::sweep_with::<LaneEngine>(&mut a, &b, 1.0 / 6.0),
    });

    let (mut a, b) = (arr2(), arr2());
    let jacobi2d = probe_family(&mut |r| match r {
        Resolved::Row => jacobi2d::sweep_with::<RowEngine>(&mut a, &b, 1.0 / 6.0),
        Resolved::Lane => jacobi2d::sweep_with::<LaneEngine>(&mut a, &b, 1.0 / 6.0),
    });

    let (mut r3, u, v) = (arr3(), arr3(), arr3());
    let resid = probe_family(&mut |r| match r {
        Resolved::Row => resid::sweep_with::<RowEngine>(&mut r3, &u, &v, &Coeffs::MGRID_A, None),
        Resolved::Lane => resid::sweep_with::<LaneEngine>(&mut r3, &u, &v, &Coeffs::MGRID_A, None),
    });

    let mut a = arr3();
    let redblack = probe_family(&mut |r| match r {
        Resolved::Row => redblack::sweep_with::<RowEngine>(&mut a, 0.4, 0.1, Schedule::Fused),
        Resolved::Lane => redblack::sweep_with::<LaneEngine>(&mut a, 0.4, 0.1, Schedule::Fused),
    });

    let mut a = arr2();
    let redblack2d = probe_family(&mut |r| match r {
        Resolved::Row => redblack2d::sweep_with::<RowEngine>(&mut a, 0.4, 0.1, Schedule2D::Fused),
        Resolved::Lane => {
            redblack2d::sweep_with::<LaneEngine>(&mut a, 0.4, 0.1, Schedule2D::Fused);
        }
    });

    [jacobi3d, jacobi2d, resid, redblack, redblack2d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_lane_pass_through_auto_resolves() {
        for k in [
            RowKernel::Jacobi3d,
            RowKernel::Jacobi2d,
            RowKernel::Resid,
            RowKernel::RedBlack,
            RowKernel::RedBlack2d,
        ] {
            assert_eq!(resolve(ExecBackend::Row, k), Resolved::Row);
            assert_eq!(resolve(ExecBackend::Lane, k), Resolved::Lane);
            let auto = resolve(ExecBackend::Auto, k);
            // Deterministic per process: the probe is cached.
            assert_eq!(resolve(ExecBackend::Auto, k), auto);
        }
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(RowEngine::NAME, "row");
        assert_eq!(LaneEngine::NAME, "lane");
        assert_eq!(Resolved::Row.name(), "row");
        assert_eq!(Resolved::Lane.name(), "lane");
        assert_eq!("auto".parse::<ExecBackend>().unwrap(), ExecBackend::Auto);
        assert!("fft".parse::<ExecBackend>().is_err());
    }
}
