//! `tiling3d` — plan, analyse, simulate and profile 3D stencil tiling from
//! the command line. See `tiling3d_cli` for the commands; every subcommand
//! accepts `--help` plus the shared observability flags (`--log-level`,
//! `--trace-out`, `--progress`, `--format`).

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match tiling3d_cli::run_argv(&raw) {
        Ok(out) => {
            print!("{out}");
            0
        }
        Err(e) => {
            eprintln!("{e}");
            2
        }
    };
    std::process::exit(code);
}
