//! `tiling3d` — plan, analyse and simulate 3D stencil tiling from the
//! command line. See `tiling3d_cli` for the commands.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match tiling3d_cli::Args::parse(&raw).and_then(|a| tiling3d_cli::run(&a)) {
        Ok(out) => {
            print!("{out}");
            0
        }
        Err(e) => {
            eprintln!("{e}");
            2
        }
    };
    std::process::exit(code);
}
