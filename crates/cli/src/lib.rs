//! Command implementations for the `tiling3d` CLI.
//!
//! Each subcommand declares its flag surface as a [`FlagSet`] (the shared
//! typed flag API from `tiling3d-obs`) and implements a pure function from
//! parsed flags to a rendered `String`, so the whole surface is
//! unit-testable without spawning processes; `main.rs` is a thin argv shim.
//!
//! ```text
//! tiling3d plan        --stencil jacobi3d --dims 341x341 [--cache-kb 16] [--steps T --jobs N]
//! tiling3d tiles       --di 200 --dj 200 [--cache 2048] [--tkmax 4]
//! tiling3d advise      --stencil jacobi3d --n 300 [--cache-kb 16] [--steps T --jobs N]
//! tiling3d simulate    --kernel resid --n 341 [--nk 30] [--transform gcdpad|all] [--jobs N] [--steps T] [--tlb] [--backend row|lane|auto]
//! tiling3d predict     --kernel jacobi --n 280 [--nk 30] [--tile 30x14]
//! tiling3d analyze     --kernel redblack [--transform gcdpad|all] [--n 200] [--no-skew] [--temporal] [--locality]
//! tiling3d oracle      --kernel jacobi --n 120 [--nk 20] [--transform all] [--geometry us2|modern|fa]
//! tiling3d measure     --kernel redblack --n 192 [--nk 30] [--transform orig] [--reps 3] [--jobs N] [--backend row|lane|auto]
//! tiling3d profile     --kernel jacobi --n 64 [--nk 30] [--jobs N] [--trace-out t.jsonl] [--steps T]
//! tiling3d chaos       [--kernel jacobi] [--min 40 --max 56 --step 8 --nk 8] [--seed 42] [--faults 2] [--jobs N] [--serve --rounds 8]
//! tiling3d trace-check trace.jsonl [--schema schema.golden]
//! tiling3d serve       --tcp 127.0.0.1:7070 [--socket PATH] [--warm-start FILE] [--no-resume] [--shards N] [--max-conns 256] [--conn-idle-ms 10000] [--max-frame-bytes 1048576] [--drain-deadline-ms 5000] [--compute-deadline-ms 0]
//! tiling3d client      REQUEST [--tcp ADDR | --socket PATH] [--retries 1] [--backoff-ms 10]
//! ```
//!
//! `plan`, `advise` and the `analyze` family are thin adapters over the
//! typed planning API ([`tiling3d_core::api`]): each builds one
//! [`PlanRequest`] from its flags and renders the [`PlanResponse`] —
//! `--format json` serializes through the exact code path the `serve`
//! wire protocol uses, governed by the same checked-in golden schema
//! (`crates/core/api.schema.golden`, DESIGN.md §16). `serve` runs the
//! memoized concurrent planning server; `client` sends one wire line to
//! it and prints the reply.
//!
//! `--steps T` (with `T > 0`) engages the **temporal mode** for iterated
//! Jacobi / red-black: `plan` and `advise` pick a time-skewed `(ST, SK)`
//! tile from cache geometry and pair it with the legality certificate of
//! the skewed schedule; `simulate` replays the naive `T`-sweep trace and
//! the time-tiled schedule through the same cache hierarchy and reports
//! the cross-timestep L1 read-miss reduction; `profile` runs the
//! wavefront-parallel time-tiled sweep so the span tree shows the
//! per-wavefront / per-time-block phases. `analyze --temporal` certifies
//! the time-skewed band schedule family — `--no-skew` requests the
//! rectangular band tiling, the known-illegal family member, rejected
//! with the broken distance vector as typed witness.
//!
//! Every command also accepts the auto-appended observability flags
//! (`--log-level`, `--trace-out`, `--progress`, `--format`); `plan`,
//! `tiles`, `advise` and `analyze` honour `--format json` with a
//! machine-readable rendering. Unknown or malformed flags are hard errors
//! (exit code 2 from the binary) carrying the auto-generated usage text.
//!
//! `simulate --transform all` replays every transformation's trace, one
//! pool worker per transform (`--jobs 0` / default = all cores); the
//! reported miss rates are identical for any worker count. `simulate` and
//! `measure` run every point under the fault-tolerant supervision path
//! (`--retries`, `--deadline-ms`, `--strict` — see DESIGN.md §13): a
//! panicking or numerically unhealthy point is reported as a typed error
//! instead of crashing the process.
//!
//! `chaos` is the deterministic fault-injection harness: it sweeps the
//! kernel fault-free to establish a baseline, then re-runs the sweep under
//! seeded panic / delay / NaN-write fault campaigns and verifies that each
//! armed point degrades to exactly the expected typed error while every
//! other point stays bit-identical to the baseline — and that with
//! once-only faults plus retries the whole sweep recovers bit-identically.
//! Any violated expectation makes the command exit non-zero. `chaos
//! --serve` switches the target from sweeps to the serving layer
//! (DESIGN.md §18): it boots an in-process hardened server and runs the
//! seeded protocol-fuzz campaign (malformed/truncated/oversized frames,
//! binary garbage, slow-loris, mid-request disconnects), a warm-start
//! corruption-recovery campaign, and a drain-under-load campaign, each
//! verifying typed errors, zero slot leaks, and byte-identical cached
//! answers after every abuse round.
//!
//! `analyze` runs the dependence-based legality analyzer: it prints each
//! schedule's dependence set, transformation steps and verdict, and exits
//! non-zero if any analyzed schedule is illegal — `--no-skew` requests the
//! rectangular (unskewed) tiling of the fused red-black schedule, the
//! known-illegal case, which the analyzer rejects with the broken distance
//! vector as witness. `analyze --locality` switches to the **static
//! locality analyzer** (DESIGN.md §15): with no simulation it derives each
//! transform's symbolic reuse-distance histogram (the full
//! fully-associative LRU miss curve and its knees), per-level predictions
//! with conflict-interference corrections, the analytic lower bound, and
//! typed conflict witnesses for pathological pad/column combinations.
//!
//! `oracle` is the three-way cross-validation: per transform and cache
//! level it reports `simulated / predicted / bound`, replaying the exact
//! trace next to the static model, and exits non-zero if the analytic
//! lower bound ever exceeds the simulated misses. `simulate --tlb` wraps
//! the hierarchy in the data-TLB model: translations miss into page-table
//! walks that read PTEs *through* the caches, and the report separates
//! walk traffic from program traffic.
//!
//! `measure` wall-clocks one execution backend at one size (`--backend
//! row|lane|auto` selects the row-segment engine, the explicit-lane SIMD
//! engine, or a measured per-kernel probe): sequential GFLOP/s plus the
//! K-slab parallel sweep across `--jobs` threads, after asserting the
//! parallel result is bitwise identical to the sequential one and a
//! non-row backend is bitwise identical to the row engine (both are hard
//! guarantees, so a mismatch is an error, not a warning). `simulate
//! --backend` runs the same cross-backend bitwise gate before the replay;
//! the simulated miss rates themselves are backend-independent.
//!
//! `profile` runs the planning + simulation pipeline at a single size with
//! collection forced on, then one parallel compute sweep per execution
//! backend under `compute:<KERNEL>:<backend>` spans (red-black shows its
//! `redblack:red` / `redblack:black` colour phases as children), and prints the span tree
//! with per-phase wall-clock percentages (plus the final metric
//! registry); `trace-check` validates a
//! JSONL trace file against the checked-in golden schema — the CI gate for
//! trace-schema drift.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use tiling3d_bench::fault::{FaultKind, FaultMode, FaultPlan};
use tiling3d_bench::serve::{self, ServeConfig, ServeLimits};
use tiling3d_bench::{
    checkpoint, simulate_grid, simulate_grid_supervised, supervise, SimPoint, SimPool, SweepConfig,
    SweepError, SweepOptions,
};
use tiling3d_cachesim::{AccessSink, CacheConfig, Hierarchy, MmuHierarchy, Tlb};
use tiling3d_core::api::{
    respond, ExecBackend, GeometryPreset, PlanQuery, PlanRequest, PlanResponse, ReqStencil,
    TransformSel,
};
use tiling3d_core::nonconflict::enumerate_array_tiles;
use tiling3d_core::predict::{predict_tiled, predict_untiled, SweepSpec};
use tiling3d_core::{
    lower_bound_misses, plan, plan_temporal, predict_level, CacheSpec, KernelModel, LevelGeometry,
    PlanSchedule, Problem, TemporalKernel, Transform,
};
use tiling3d_grid::{fill_random, Array3};
use tiling3d_obs as obs;
use tiling3d_obs::flags::{FlagSet, FlagSpec, ParsedFlags};
use tiling3d_obs::json::Json;
use tiling3d_stencil::kernels::Kernel;
use tiling3d_stencil::timetile::{self, TimeTile};

// ---------------------------------------------------------------------------
// Command table
// ---------------------------------------------------------------------------

/// One dispatched subcommand: its name, flag declaration, and
/// implementation. [`usage`] and [`run_argv`] are both derived from
/// [`COMMANDS`], so the usage text, the parser, and the dispatcher cannot
/// drift apart.
pub struct CommandDef {
    /// Subcommand word as typed on the command line.
    pub name: &'static str,
    /// The command's declared flag surface (obs flags auto-appended).
    pub flag_set: fn() -> FlagSet,
    /// The implementation: parsed flags to rendered output.
    pub run: fn(&ParsedFlags) -> Result<String, String>,
}

/// Every dispatched subcommand, in usage order.
pub const COMMANDS: &[CommandDef] = &[
    CommandDef {
        name: "plan",
        flag_set: plan_flags,
        run: cmd_plan,
    },
    CommandDef {
        name: "tiles",
        flag_set: tiles_flags,
        run: cmd_tiles,
    },
    CommandDef {
        name: "advise",
        flag_set: advise_flags,
        run: cmd_advise,
    },
    CommandDef {
        name: "simulate",
        flag_set: simulate_flags,
        run: cmd_simulate,
    },
    CommandDef {
        name: "predict",
        flag_set: predict_flags,
        run: cmd_predict,
    },
    CommandDef {
        name: "analyze",
        flag_set: analyze_flags,
        run: cmd_analyze,
    },
    CommandDef {
        name: "oracle",
        flag_set: oracle_flags,
        run: cmd_oracle,
    },
    CommandDef {
        name: "measure",
        flag_set: measure_flags,
        run: cmd_measure,
    },
    CommandDef {
        name: "profile",
        flag_set: profile_flags,
        run: cmd_profile,
    },
    CommandDef {
        name: "chaos",
        flag_set: chaos_flags,
        run: cmd_chaos,
    },
    CommandDef {
        name: "trace-check",
        flag_set: trace_check_flags,
        run: cmd_trace_check,
    },
    CommandDef {
        name: "serve",
        flag_set: serve_flags,
        run: cmd_serve,
    },
    CommandDef {
        name: "client",
        flag_set: client_flags,
        run: cmd_client,
    },
];

/// Top-level usage: one line per subcommand, generated from [`COMMANDS`].
pub fn usage() -> String {
    let mut out = String::from("usage: tiling3d <command> [--key value ...]\n\ncommands:\n");
    let width = COMMANDS.iter().map(|c| c.name.len()).max().unwrap_or(0);
    for c in COMMANDS {
        let set = (c.flag_set)();
        let _ = writeln!(out, "  {:width$}  {}", c.name, set.about);
    }
    out.push_str("\nrun `tiling3d <command> --help` for that command's flags");
    out
}

/// Parses and dispatches a raw argument list (without the program name).
/// Initialises the observability layer when the parsed obs flags ask for it
/// (`profile` manages its own recorder — it forces collection on).
pub fn run_argv(raw: &[String]) -> Result<String, String> {
    let name = raw.first().ok_or_else(usage)?;
    if name == "--help" || name == "-h" {
        return Err(usage());
    }
    let cmd = COMMANDS
        .iter()
        .find(|c| c.name == *name)
        .ok_or_else(|| format!("unknown command '{name}'\n{}", usage()))?;
    let flags = (cmd.flag_set)().parse(&raw[1..])?;
    let cfg = obs::ObsConfig::from_flags(&flags)?;
    // Touch the process-global recorder only when the user asked for
    // something (keeps parallel in-process tests independent).
    let own_recorder = cmd.name != "profile" && (cfg.is_active() || cfg.log_level != 2);
    if own_recorder {
        obs::init(cfg)?;
    }
    let result = (cmd.run)(&flags);
    if own_recorder {
        obs::shutdown();
    }
    result
}

// ---------------------------------------------------------------------------
// Shared flag fragments and typed readers
// ---------------------------------------------------------------------------

const STENCIL_FLAG: FlagSpec = FlagSpec::str(
    "--stencil",
    Some("jacobi3d"),
    "stencil shape: jacobi3d|jacobi2d|redblack|resid",
);
const KERNEL_FLAG: FlagSpec =
    FlagSpec::str("--kernel", Some("jacobi"), "kernel: jacobi|redblack|resid");
const CACHE_KB_FLAG: FlagSpec = FlagSpec::usize("--cache-kb", Some("16"), "cache capacity in KB");
const LINE_FLAG: FlagSpec = FlagSpec::usize("--line", Some("32"), "cache line size in bytes");
const NK_FLAG: FlagSpec = FlagSpec::usize("--nk", Some("30"), "third-dimension extent");
const JOBS_FLAG: FlagSpec =
    FlagSpec::usize("--jobs", Some("0"), "simulation workers (0 = one per core)");
const STEPS_FLAG: FlagSpec = FlagSpec::usize(
    "--steps",
    Some("0"),
    "iterated time steps: engage the temporal (T, K) tiling mode",
);
const BACKEND_FLAG: FlagSpec = FlagSpec::str(
    "--backend",
    Some("row"),
    "execution backend: row | lane | auto",
);

fn kernel(flags: &ParsedFlags) -> Result<Kernel, String> {
    flags.parse_str("--kernel")
}

/// The typed API stencil named by `--stencil`.
fn req_stencil(flags: &ParsedFlags) -> Result<ReqStencil, String> {
    flags.parse_str("--stencil")
}

/// The typed API stencil named by `--kernel` (parsed through [`Kernel`]
/// so unknown names keep their historical "unknown kernel" error).
fn req_kernel(flags: &ParsedFlags) -> Result<ReqStencil, String> {
    Ok(match kernel(flags)? {
        Kernel::Jacobi => ReqStencil::Jacobi3d,
        Kernel::RedBlack => ReqStencil::RedBlack,
        Kernel::Resid => ReqStencil::Resid,
    })
}

/// The transform coverage named by `--transform` (default: all).
fn transform_sel(flags: &ParsedFlags) -> Result<TransformSel, String> {
    match flags.try_str("--transform") {
        None => Ok(TransformSel::All),
        Some(t) if t.eq_ignore_ascii_case("all") => Ok(TransformSel::All),
        Some(t) => Ok(TransformSel::One(t.parse()?)),
    }
}

/// Worker count a temporal request is sized for: "all cores" resolves
/// here so wire cache keys stay machine-independent; spatial-only
/// requests collapse to 1 (canonicalization would anyway).
fn request_jobs(flags: &ParsedFlags, steps: usize) -> usize {
    if steps > 0 {
        SimPool::new(flags.usize("--jobs")).jobs()
    } else {
        1
    }
}

fn cache_spec(flags: &ParsedFlags) -> CacheSpec {
    CacheSpec::from_bytes(flags.usize("--cache-kb") * 1024)
}

/// The iterated-kernel counterpart of a runnable kernel, for the
/// temporal (time-skewed) mode. RESID has no iterated in-place form.
fn temporal_kernel(k: Kernel) -> Result<TemporalKernel, String> {
    match k {
        Kernel::Jacobi => Ok(TemporalKernel::Jacobi),
        Kernel::RedBlack => Ok(TemporalKernel::RedBlack),
        Kernel::Resid => {
            Err("temporal mode supports jacobi and redblack only (resid is not iterated)".into())
        }
    }
}

/// The supervision-policy subset of [`SweepOptions::FLAGS`] (`--strict`,
/// `--retries`, `--deadline-ms`). `simulate` and `measure` declare these;
/// checkpoint/resume stays with the bench sweep drivers, where sweeps are
/// long enough to interrupt.
fn policy_flags() -> &'static [FlagSpec] {
    &SweepOptions::FLAGS[..3]
}

/// Is `--format json` in effect? Rejects formats the tiling3d subcommands
/// do not render (the bench drivers own `csv`).
fn json_format(flags: &ParsedFlags) -> Result<bool, String> {
    match flags.str("--format") {
        "text" => Ok(false),
        "json" => Ok(true),
        other => Err(format!(
            "--format: unsupported format '{other}' (expected text or json)"
        )),
    }
}

// ---------------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------------

fn plan_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d plan",
        "tile + padding plan for every transformation",
        None,
        &[
            STENCIL_FLAG,
            FlagSpec::pair("--dims", "array dimensions DIxDJ (required)"),
            CACHE_KB_FLAG,
            STEPS_FLAG,
            JOBS_FLAG,
        ],
    )
}

fn cmd_plan(flags: &ParsedFlags) -> Result<String, String> {
    let (di, dj) = flags.try_pair("--dims").ok_or("plan requires --dims AxB")?;
    let steps = flags.usize("--steps");
    let req = PlanRequest {
        query: PlanQuery::Plan,
        stencil: req_stencil(flags)?,
        di,
        dj,
        nk: 0,
        cache: cache_spec(flags),
        transforms: TransformSel::All,
        steps,
        jobs: request_jobs(flags, steps),
    };
    let resp = respond(&req)?;
    if json_format(flags)? {
        return Ok(format!("{}\n", resp.render()));
    }
    let PlanResponse::Plans(r) = &resp else {
        unreachable!("plan query answers with a plan table");
    };
    let shape = r.stencil.shape();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "planning for a {}x{}xM array, stencil {} (m={}, n={}, ATD={}), cache {} doubles",
        r.di,
        r.dj,
        shape.name(),
        shape.m(),
        shape.n(),
        shape.atd(),
        r.cache.elements
    );
    let _ = writeln!(
        out,
        "{:<10}{:>12}{:>16}{:>12}",
        "transform", "tile", "padded dims", "model cost"
    );
    for p in &r.rows {
        let _ = writeln!(
            out,
            "{:<10}{:>12}{:>16}{:>12}",
            p.transform.name(),
            p.tile.map_or("-".into(), |(a, b)| format!("{a}x{b}")),
            format!("{}x{}", p.padded_di, p.padded_dj),
            if p.cost.is_finite() {
                format!("{:.4}", p.cost)
            } else {
                "-".into()
            },
        );
    }
    if let Some(t) = &r.temporal {
        let ws_kb = t.working_elements * 8 / 1024;
        let _ = writeln!(
            out,
            "\ntemporal plan: {} x {} steps, {} job(s) -> time tile (ST, SK) = ({}, {})",
            t.kernel.name(),
            t.steps,
            t.jobs,
            t.plan.st,
            t.plan.sk
        );
        if let Some((sched, _)) = &t.certified {
            let _ = writeln!(
                out,
                "  working set {} planes/buffer x {} buffer(s) = {ws_kb} KB; \
                 schedule '{sched}' certified legal",
                t.plan.working_planes,
                t.kernel.buffers(),
            );
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// tiles
// ---------------------------------------------------------------------------

fn tiles_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d tiles",
        "maximal non-conflicting array tiles (Table 1)",
        None,
        &[
            FlagSpec::usize("--di", Some("200"), "leading array dimension"),
            FlagSpec::usize("--dj", None, "middle array dimension (default: --di)"),
            FlagSpec::usize("--cache", Some("2048"), "cache capacity in elements"),
            FlagSpec::usize("--tkmax", Some("4"), "largest array-tile depth to list"),
        ],
    )
}

fn cmd_tiles(flags: &ParsedFlags) -> Result<String, String> {
    let di = flags.usize("--di");
    let dj = flags.try_usize("--dj").unwrap_or(di);
    let cache = flags.usize("--cache");
    let tkmax = flags.usize("--tkmax");
    let tiles = enumerate_array_tiles(cache, di, dj, tkmax);
    if json_format(flags)? {
        let rows = tiles
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("tk", Json::uint(t.tk as u64)),
                    ("tj", Json::uint(t.tj as u64)),
                    ("ti", Json::uint(t.ti as u64)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("di", Json::uint(di as u64)),
            ("dj", Json::uint(dj as u64)),
            ("cache_elements", Json::uint(cache as u64)),
            ("tiles", Json::Arr(rows)),
        ]);
        return Ok(format!("{}\n", doc.render()));
    }
    let mut out =
        format!("maximal non-conflicting array tiles, {di}x{dj}xM array, {cache}-element cache:\n");
    let _ = writeln!(out, "{:>4}{:>6}{:>6}", "TK", "TJ", "TI");
    for t in &tiles {
        let _ = writeln!(out, "{:>4}{:>6}{:>6}", t.tk, t.tj, t.ti);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// advise
// ---------------------------------------------------------------------------

fn advise_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d advise",
        "does this stencil at this size still have cache reuse?",
        None,
        &[
            STENCIL_FLAG,
            FlagSpec::usize("--n", None, "problem size N (required)"),
            CACHE_KB_FLAG,
            STEPS_FLAG,
            JOBS_FLAG,
        ],
    )
}

fn cmd_advise(flags: &ParsedFlags) -> Result<String, String> {
    let n = flags.try_usize("--n").ok_or("advise requires --n")?;
    if n == 0 {
        return Err("advise requires --n".into());
    }
    let steps = flags.usize("--steps");
    let req = PlanRequest {
        query: PlanQuery::Advise,
        stencil: req_stencil(flags)?,
        di: n,
        dj: n,
        nk: 0,
        cache: cache_spec(flags),
        transforms: TransformSel::All,
        steps,
        jobs: request_jobs(flags, steps),
    };
    let resp = respond(&req)?;
    if json_format(flags)? {
        return Ok(format!("{}\n", resp.render()));
    }
    let PlanResponse::Advice(r) = &resp else {
        unreachable!("advise query answers with advice");
    };
    let shape = r.stencil.shape();
    let mut out = String::new();
    match r.reuse_distance {
        None => {
            let _ = writeln!(
                out,
                "2D stencil {}: group reuse survives up to column length {}; \
                 at N = {}: {:?}",
                shape.name(),
                r.reuse_bound,
                r.n,
                r.verdict
            );
        }
        Some(dist) => {
            let _ = writeln!(
                out,
                "3D stencil {}: K-loop reuse survives up to plane extent {}; \
                 at N = {}: {:?}",
                shape.name(),
                r.reuse_bound,
                r.n,
                r.verdict
            );
            let _ = writeln!(
                out,
                "reuse distance across K at N = {}: {dist} elements ({} KB)",
                r.n,
                dist * 8 / 1024
            );
            if let Some(t) = &r.temporal {
                let _ = writeln!(
                    out,
                    "temporal: {} x {} steps, {} job(s) -> time tile (ST, SK) = ({}, {}) \
                     ({} planes/buffer in cache)",
                    t.kernel.name(),
                    t.steps,
                    t.jobs,
                    t.plan.st,
                    t.plan.sk,
                    t.plan.working_planes
                );
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// simulate
// ---------------------------------------------------------------------------

fn simulate_flags() -> FlagSet {
    let mut flags = vec![
        KERNEL_FLAG,
        FlagSpec::usize("--n", None, "problem size N (required, >= 3)"),
        NK_FLAG,
        CACHE_KB_FLAG,
        LINE_FLAG,
        FlagSpec::str(
            "--transform",
            Some("pad"),
            "transformation (orig|tile|euc3d|gcdpad|pad|gcdpadnt|all)",
        ),
        JOBS_FLAG,
        STEPS_FLAG,
        BACKEND_FLAG,
        FlagSpec::switch(
            "--tlb",
            "simulate the 64-entry/8KB data TLB with page-walk reads through the caches",
        ),
    ];
    flags.extend_from_slice(policy_flags());
    FlagSet::new(
        "tiling3d simulate",
        "replay a kernel trace through the cache hierarchy",
        None,
        &flags,
    )
}

fn cmd_simulate(flags: &ParsedFlags) -> Result<String, String> {
    let kernel = kernel(flags)?;
    let n = flags.try_usize("--n").unwrap_or(0);
    if n < 3 {
        return Err("simulate requires --n >= 3".into());
    }
    let nk = flags.usize("--nk");
    let backend: ExecBackend = flags.parse_str("--backend")?;
    let cache = cache_spec(flags);
    let l1 = CacheConfig::direct_mapped(cache.elements * 8, flags.usize("--line"));
    l1.validate()
        .map_err(|e| format!("bad cache geometry: {e}"))?;
    if backend != ExecBackend::Row
        && (flags.usize("--steps") > 0
            || flags.switch("--tlb")
            || flags.str("--transform").eq_ignore_ascii_case("all"))
    {
        return Err(
            "simulate: --backend applies to the single-transform replay only \
             (simulated metrics are backend-independent)"
                .into(),
        );
    }
    if flags.usize("--steps") > 0 {
        if flags.switch("--tlb") {
            return Err("simulate: --tlb does not combine with --steps (temporal mode)".into());
        }
        return simulate_temporal(flags, kernel, n, nk, cache, l1);
    }
    if flags.str("--transform").eq_ignore_ascii_case("all") {
        if flags.switch("--tlb") {
            return Err("simulate: --tlb needs a single --transform, not 'all'".into());
        }
        return simulate_all(flags, kernel, n, nk, cache, l1);
    }
    let opts = SweepOptions::from_flags(flags)?;
    let t: Transform = flags.parse_str("--transform")?;
    if flags.switch("--tlb") {
        return simulate_tlb(&opts, kernel, t, n, nk, cache, l1);
    }
    let (p, h) = supervise::supervise_item(&opts.policy, || {
        let p = plan(t, cache, n, n, &kernel.shape());
        let mut h = Hierarchy::new(l1, CacheConfig::ULTRASPARC2_L2);
        kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut h);
        sim_health(&h)?;
        Ok((p, h))
    })
    .map_err(|e| format!("simulate: {} at N = {n} failed: {e}", t.name()))?;

    // Simulated metrics are backend-independent (the trace is the access
    // pattern, not the instruction schedule), so a non-default backend is
    // *verified* rather than traced: one compute sweep on the selected
    // engine must reproduce the row engine bitwise on the exact planned
    // geometry.
    let mut backend_note = String::new();
    if backend != ExecBackend::Row {
        let mut row = kernel.make_state(n, nk, &p, 0x5EED);
        let mut alt = row.clone();
        kernel.run(&mut row, p.tile);
        kernel.run_with(&mut alt, p.tile, backend);
        if !state_out(&row).logical_eq(state_out(&alt)) {
            return Err(format!(
                "simulate: {} backend diverged from the row engine at N = {n}",
                backend.name()
            ));
        }
        backend_note = format!(
            "backend {}: compute sweep verified bitwise against the row engine \
             (simulated misses are backend-independent)\n",
            backend.name()
        );
    }
    Ok(format!(
        "{} {n}x{n}x{nk} under {}: tile {:?}, dims {}x{}\n\
         L1 miss rate {:.2}% ({} misses / {} accesses); L2 miss rate {:.2}%\n{backend_note}",
        kernel.name(),
        t.name(),
        p.tile,
        p.padded_di,
        p.padded_dj,
        h.l1_miss_rate_pct(),
        h.l1_stats().misses,
        h.l1_stats().accesses,
        h.l2_miss_rate_pct(),
    ))
}

/// `simulate --tlb`: the same single-transform replay, but through an
/// [`MmuHierarchy`] — a 64-entry/8KB-page data TLB whose misses cost a
/// page-table-entry read *through the caches* (so walk traffic both
/// pollutes and profits from L1/L2). Reports the TLB miss rate and the
/// walker's share of cache traffic next to the usual per-level rates,
/// quantifying the cache-vs-TLB trade-off of thin tiles (Mitchell et al.).
fn simulate_tlb(
    opts: &SweepOptions,
    kernel: Kernel,
    t: Transform,
    n: usize,
    nk: usize,
    cache: CacheSpec,
    l1: CacheConfig,
) -> Result<String, String> {
    let (p, m) = supervise::supervise_item(&opts.policy, || {
        let p = plan(t, cache, n, n, &kernel.shape());
        let mut m = MmuHierarchy::new(
            Tlb::ultrasparc2(),
            Hierarchy::new(l1, CacheConfig::ULTRASPARC2_L2),
        );
        kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut m);
        sim_health(m.hierarchy())?;
        Ok((p, m))
    })
    .map_err(|e| format!("simulate: {} at N = {n} failed: {e}", t.name()))?;
    let tlb = m.tlb_stats();
    let l1s = m.l1_stats();
    Ok(format!(
        "{} {n}x{n}x{nk} under {} with dTLB (64 entries x 8KB pages): tile {:?}, dims {}x{}\n\
         TLB miss rate {:.4}% ({} walks / {} translations)\n\
         L1 miss rate {:.2}% ({} misses / {} accesses, of which {} are page-walk reads)\n\
         L2 miss rate {:.2}%\n",
        kernel.name(),
        t.name(),
        p.tile,
        p.padded_di,
        p.padded_dj,
        m.tlb_miss_rate_pct(),
        m.walk_reads(),
        tlb.accesses,
        m.hierarchy().l1_miss_rate_pct(),
        l1s.misses,
        l1s.accesses,
        m.walk_reads(),
        m.hierarchy().l2_miss_rate_pct(),
    ))
}

/// Rejects a simulated hierarchy with non-finite miss rates — the
/// CLI-side numerical sentinel.
fn sim_health(h: &Hierarchy) -> Result<(), SweepError> {
    for (name, v) in [
        ("L1 miss rate", h.l1_miss_rate_pct()),
        ("L2 miss rate", h.l2_miss_rate_pct()),
    ] {
        if !v.is_finite() {
            return Err(SweepError::Unhealthy {
                reason: format!("non-finite {name} ({v})"),
            });
        }
    }
    Ok(())
}

/// `simulate --transform all`: every transformation's trace, sharded one
/// per pool worker under the supervision policy. Transform order (and
/// therefore output) is fixed; worker count only changes wall time. A
/// failed transform renders as a `FAILED` row and turns the invocation
/// into an `Err` (non-zero exit) with the intact rows still shown.
fn simulate_all(
    flags: &ParsedFlags,
    kernel: Kernel,
    n: usize,
    nk: usize,
    cache: CacheSpec,
    l1: CacheConfig,
) -> Result<String, String> {
    let opts = SweepOptions::from_flags(flags)?;
    let pool = SimPool::new(flags.usize("--jobs"));
    let rows = pool.try_map(&Transform::ALL, &opts.policy, |&t| {
        let p = plan(t, cache, n, n, &kernel.shape());
        let mut h = Hierarchy::new(l1, CacheConfig::ULTRASPARC2_L2);
        kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut h);
        sim_health(&h)?;
        Ok((p, h))
    });
    let mut out = format!(
        "{} {n}x{n}x{nk}, all transforms ({} workers):\n{:<10}{:>10}{:>14}{:>12}{:>12}\n",
        kernel.name(),
        pool.jobs(),
        "transform",
        "tile",
        "padded dims",
        "L1 miss %",
        "L2 miss %"
    );
    let mut failed = 0usize;
    for (&t, row) in Transform::ALL.iter().zip(&rows) {
        match row {
            Ok((p, h)) => {
                let _ = writeln!(
                    out,
                    "{:<10}{:>10}{:>14}{:>12.2}{:>12.2}",
                    t.name(),
                    p.tile.map_or("-".into(), |(a, b)| format!("{a}x{b}")),
                    format!("{}x{}", p.padded_di, p.padded_dj),
                    h.l1_miss_rate_pct(),
                    h.l2_miss_rate_pct(),
                );
            }
            Err(e) => {
                failed += 1;
                let _ = writeln!(out, "{:<10}FAILED: {e}", t.name());
            }
        }
    }
    if failed > 0 {
        let _ = writeln!(out, "{failed} transform(s) failed");
        return Err(out);
    }
    Ok(out)
}

/// `simulate --steps T`: the temporal A/B. Replays the naive `T`-sweep
/// trace and the time-skewed tile schedule (tile from [`plan_temporal`]
/// on the same cache geometry, sequential band order) through identical
/// cache hierarchies, and reports the cross-timestep reduction in L1
/// read misses — the quantity time skewing exists to buy. The two Jacobi
/// buffers are based half a cache apart so they do not map on top of
/// each other in the direct-mapped L1.
fn simulate_temporal(
    flags: &ParsedFlags,
    kernel: Kernel,
    n: usize,
    nk: usize,
    cache: CacheSpec,
    l1: CacheConfig,
) -> Result<String, String> {
    let steps = flags.usize("--steps");
    let tk = temporal_kernel(kernel)?;
    let tile = plan_temporal(tk, cache, n * n, steps, 1);
    let tt = TimeTile {
        st: tile.st,
        sk: tile.sk,
    };
    let grid = Array3::<f64>::new(n, n, nk);
    let bytes = (grid.as_slice().len() * 8) as u64;
    let bases = [0u64, bytes + (cache.elements * 8 / 2) as u64];
    let opts = SweepOptions::from_flags(flags)?;
    let (naive, tiled) = supervise::supervise_item(&opts.policy, || {
        let mut naive = Hierarchy::new(l1, CacheConfig::ULTRASPARC2_L2);
        let mut tiled = Hierarchy::new(l1, CacheConfig::ULTRASPARC2_L2);
        match tk {
            TemporalKernel::Jacobi => {
                timetile::trace_jacobi_steps(&grid, steps, bases, &mut naive);
                timetile::trace_jacobi_time_tiled(&grid, steps, tt, bases, &mut tiled);
            }
            TemporalKernel::RedBlack => {
                timetile::trace_redblack_steps(&grid, steps, 0, &mut naive);
                timetile::trace_redblack_time_tiled(&grid, steps, tt, 0, &mut tiled);
            }
        }
        sim_health(&naive)?;
        sim_health(&tiled)?;
        Ok((naive, tiled))
    })
    .map_err(|e| {
        format!(
            "simulate: temporal {} at N = {n} failed: {e}",
            kernel.name()
        )
    })?;
    let (nrm, trm) = (naive.l1_stats().read_misses, tiled.l1_stats().read_misses);
    let reduction = if nrm > 0 {
        (nrm as f64 - trm as f64) * 100.0 / nrm as f64
    } else {
        0.0
    };
    let mut out = format!(
        "temporal simulate: {} {n}x{n}x{nk}, T = {steps}, time tile (ST, SK) = ({}, {})\n",
        kernel.name(),
        tt.st,
        tt.sk
    );
    let _ = writeln!(
        out,
        "{:<18}{:>12}{:>16}{:>12}",
        "schedule", "L1 miss %", "L1 read misses", "L2 miss %"
    );
    for (label, h) in [("naive x T", &naive), ("time-tiled", &tiled)] {
        let _ = writeln!(
            out,
            "{:<18}{:>12.2}{:>16}{:>12.2}",
            label,
            h.l1_miss_rate_pct(),
            h.l1_stats().read_misses,
            h.l2_miss_rate_pct(),
        );
    }
    let _ = writeln!(
        out,
        "cross-timestep L1 read-miss reduction: {reduction:.1}% ({nrm} -> {trm})"
    );
    Ok(out)
}

// ---------------------------------------------------------------------------
// predict
// ---------------------------------------------------------------------------

fn predict_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d predict",
        "closed-form miss prediction (no simulation)",
        None,
        &[
            KERNEL_FLAG,
            FlagSpec::usize("--n", None, "problem size N (required, >= 3)"),
            NK_FLAG,
            CACHE_KB_FLAG,
            LINE_FLAG,
            FlagSpec::pair("--tile", "predict a TIxTJ-tiled sweep instead of untiled"),
        ],
    )
}

fn cmd_predict(flags: &ParsedFlags) -> Result<String, String> {
    let kernel = kernel(flags)?;
    let n = flags.try_usize("--n").unwrap_or(0);
    if n < 3 {
        return Err("predict requires --n >= 3".into());
    }
    let nk = flags.usize("--nk");
    let cache = cache_spec(flags);
    let line = flags.usize("--line") / 8;
    let spec = match kernel {
        Kernel::Jacobi => SweepSpec::jacobi3d(),
        Kernel::RedBlack => SweepSpec::redblack_naive(),
        Kernel::Resid => SweepSpec::resid(),
    };
    let pr = match flags.try_pair("--tile") {
        None => predict_untiled(cache, line, &spec, n, nk, n, n),
        Some((ti, tj)) => predict_tiled(cache, line, &spec, n, nk, ti, tj),
    };
    Ok(format!(
        "analytic prediction for {} {n}x{n}x{nk} (conflict-free {}-double cache):\n\
         {:.0} misses / {:.0} accesses = {:.2}% miss rate\n",
        kernel.name(),
        cache.elements,
        pr.misses,
        pr.accesses,
        pr.miss_rate_pct,
    ))
}

// ---------------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------------

fn analyze_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d analyze",
        "dependence-based legality certification",
        None,
        &[
            KERNEL_FLAG,
            FlagSpec::usize("--n", Some("200"), "problem size N"),
            CACHE_KB_FLAG,
            FlagSpec::str(
                "--transform",
                None,
                "transformation to certify (default: all)",
            ),
            FlagSpec::switch(
                "--no-skew",
                "request the unskewed fused red-black tiling (known illegal)",
            ),
            FlagSpec::switch(
                "--temporal",
                "certify the time-skewed (T, K) band schedule family instead",
            ),
            FlagSpec::switch(
                "--locality",
                "run the static locality analyzer: reuse histogram, miss curve, conflict witnesses",
            ),
            NK_FLAG,
            GEOMETRY_FLAG,
        ],
    )
}

/// `analyze --temporal`: certify the time-skewed `(T, K)` band schedule
/// family for the iterated kernel — the temporal counterpart of the
/// spatial certificates. `--no-skew` requests the rectangular band
/// tiling, the known-illegal family member, which is rejected with the
/// broken time-stepped distance vector as typed witness (non-zero exit —
/// the CI gate relies on this).
fn analyze_temporal(flags: &ParsedFlags) -> Result<String, String> {
    let req = PlanRequest {
        query: PlanQuery::TemporalLegality {
            skewed: !flags.switch("--no-skew"),
        },
        stencil: req_kernel(flags)?,
        di: 0,
        dj: 0,
        nk: 0,
        cache: cache_spec(flags),
        transforms: TransformSel::All,
        steps: 0,
        jobs: 1,
    };
    let resp = respond(&req)?;
    let PlanResponse::TemporalLegality(r) = &resp else {
        unreachable!("temporal-legality query answers with a certificate");
    };
    let legal = r.certificate.is_legal();
    let rendered = if json_format(flags)? {
        format!("{}\n", resp.render())
    } else {
        let mut out = format!(
            "temporal legality analysis: iterated {}, schedule '{}'\n\n",
            r.kernel.name(),
            r.certificate.schedule.name
        );
        out.push_str(&r.certificate.report());
        if legal {
            let _ = writeln!(out, "\nthe time-skewed band tiling is legal");
        } else {
            let _ = writeln!(
                out,
                "\nILLEGAL temporal schedule for {} — refusing to certify",
                r.kernel.name()
            );
        }
        out
    };
    if legal {
        Ok(rendered)
    } else {
        Err(rendered)
    }
}

/// `analyze`: the legality analyzer. For each requested transform, plans
/// it (which decides whether the executed schedule is tiled), certifies
/// the schedule against the kernel's dependence set, and prints the full
/// certificate: iteration-space dimensions, dependences, schedule steps,
/// verdict. Any illegal schedule turns the whole invocation into an `Err`,
/// so the process exits non-zero — the CI gate relies on this.
fn cmd_analyze(flags: &ParsedFlags) -> Result<String, String> {
    if flags.switch("--temporal") {
        return analyze_temporal(flags);
    }
    if flags.switch("--locality") {
        return analyze_locality(flags);
    }
    let stencil = req_kernel(flags)?;
    let n = flags.usize("--n");
    if n < 3 {
        return Err("analyze requires --n >= 3".into());
    }
    let req = PlanRequest {
        query: PlanQuery::Legality {
            skewed: !flags.switch("--no-skew"),
        },
        stencil,
        di: n,
        dj: n,
        nk: 0,
        cache: cache_spec(flags),
        transforms: transform_sel(flags)?,
        steps: 0,
        jobs: 1,
    };
    let resp = respond(&req)?;
    let PlanResponse::Legality(r) = &resp else {
        unreachable!("legality query answers with certificates");
    };
    let illegal: Vec<&str> = r
        .rows
        .iter()
        .filter(|row| !row.certificate.is_legal())
        .map(|row| row.plan.transform.name())
        .collect();
    let rendered = if json_format(flags)? {
        format!("{}\n", resp.render())
    } else {
        let kernel_name = r.stencil.kernel_name().unwrap_or("UNKNOWN");
        let mut out = format!(
            "legality analysis: {} (discipline {:?}), {n}x{n} arrays, cache {} doubles\n",
            kernel_name, r.discipline, req.cache.elements
        );
        for row in &r.rows {
            let _ = writeln!(
                out,
                "\n== {} / {} ({}) ==",
                kernel_name,
                row.plan.transform.name(),
                row.plan
                    .tile
                    .map_or("untiled".into(), |(a, b)| format!("tile {a}x{b}")),
            );
            out.push_str(&row.certificate.report());
        }
        if illegal.is_empty() {
            let _ = writeln!(out, "\nall analyzed schedules are legal");
        } else {
            let _ = writeln!(
                out,
                "\nILLEGAL schedules for: {} — refusing to certify",
                illegal.join(", ")
            );
        }
        out
    };
    if illegal.is_empty() {
        Ok(rendered)
    } else {
        Err(rendered)
    }
}

// ---------------------------------------------------------------------------
// Static locality analysis (`analyze --locality`) and the oracle
// ---------------------------------------------------------------------------

const GEOMETRY_FLAG: FlagSpec = FlagSpec::str(
    "--geometry",
    Some("us2"),
    "cache geometry for locality analysis: us2|modern|fa",
);

/// One analysed memory system: the simulator configs plus the static
/// model's view of the same two levels.
struct AnalysisGeometry {
    name: &'static str,
    l1_cfg: CacheConfig,
    l2_cfg: CacheConfig,
    l1: LevelGeometry,
    l2: LevelGeometry,
}

fn analysis_geometry(flags: &ParsedFlags) -> Result<AnalysisGeometry, String> {
    use tiling3d_cachesim::{ReplacementPolicy, WritePolicy};
    match flags.str("--geometry") {
        "us2" => Ok(AnalysisGeometry {
            name: "us2",
            l1_cfg: CacheConfig::ULTRASPARC2_L1,
            l2_cfg: CacheConfig::ULTRASPARC2_L2,
            l1: LevelGeometry::ultrasparc2_l1(),
            l2: LevelGeometry::ultrasparc2_l2(),
        }),
        "modern" => Ok(AnalysisGeometry {
            name: "modern",
            l1_cfg: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                write_policy: WritePolicy::WriteAllocate,
                replacement: ReplacementPolicy::Lru,
            },
            l2_cfg: CacheConfig {
                size_bytes: 1024 * 1024,
                line_bytes: 64,
                ways: 8,
                write_policy: WritePolicy::WriteAllocate,
                replacement: ReplacementPolicy::Lru,
            },
            l1: LevelGeometry::modern_l1(),
            l2: LevelGeometry::modern_l2(),
        }),
        "fa" => Ok(AnalysisGeometry {
            name: "fa",
            l1_cfg: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 32,
                ways: 512,
                write_policy: WritePolicy::WriteAround,
                replacement: ReplacementPolicy::Lru,
            },
            l2_cfg: CacheConfig::ULTRASPARC2_L2,
            l1: LevelGeometry::fa_16k(),
            l2: LevelGeometry::ultrasparc2_l2(),
        }),
        other => Err(format!(
            "--geometry: unknown geometry '{other}' (expected us2, modern or fa)"
        )),
    }
}

/// One kernel × transform cell as the static model sees it. Red-black
/// realises its locality transformation as the *fused* schedule (Fig 12)
/// rather than the skewed tile: the skewed-tiled working set sits exactly
/// on the capacity boundary by construction, where a static hit/miss
/// classifier is not meaningful (DESIGN.md §15).
struct LocalityCell {
    model: KernelModel,
    sched: PlanSchedule,
    prob: Problem,
    tile: Option<(usize, usize)>,
}

fn locality_cell(
    kernel: Kernel,
    t: Transform,
    cache: CacheSpec,
    n: usize,
    nk: usize,
) -> LocalityCell {
    let p = plan(t, cache, n, n, &kernel.shape());
    let tile = if kernel == Kernel::RedBlack {
        None
    } else {
        p.tile
    };
    let sched = match tile {
        Some((ti, tj)) => PlanSchedule::Tiled { ti, tj },
        None => PlanSchedule::Untiled,
    };
    let model = match kernel {
        Kernel::Jacobi => KernelModel::jacobi3d(),
        Kernel::RedBlack if t == Transform::Orig => KernelModel::redblack_naive(),
        Kernel::RedBlack => KernelModel::redblack_fused(),
        Kernel::Resid => KernelModel::resid(),
    };
    LocalityCell {
        model,
        sched,
        prob: Problem {
            n,
            nk,
            di: p.padded_di,
            dj: p.padded_dj,
        },
        tile,
    }
}

/// Replays the exact trace the cell models (the oracle's simulated leg).
fn replay_cell<S: AccessSink>(kernel: Kernel, cell: &LocalityCell, sink: &mut S) {
    use tiling3d_stencil::redblack;
    let Problem { n, nk, di, dj } = cell.prob;
    let tile = cell
        .tile
        .map(|(ti, tj)| tiling3d_loopnest::TileDims::new(ti, tj));
    match kernel {
        Kernel::Jacobi => tiling3d_stencil::jacobi3d::trace(n, n, nk, di, dj, tile, sink),
        Kernel::RedBlack => {
            let sched = if cell.model.fused3d {
                redblack::Schedule::Fused
            } else {
                redblack::Schedule::Naive
            };
            redblack::trace(n, nk, di, dj, sched, sink);
        }
        Kernel::Resid => tiling3d_stencil::resid::trace(n, n, nk, di, dj, tile, sink),
    }
}

fn requested_transforms(flags: &ParsedFlags) -> Result<Vec<Transform>, String> {
    match flags.try_str("--transform") {
        None => Ok(Transform::ALL.to_vec()),
        Some(t) if t.eq_ignore_ascii_case("all") => Ok(Transform::ALL.to_vec()),
        Some(t) => Ok(vec![t.parse()?]),
    }
}

/// `analyze --locality`: the purely static locality analyzer. For each
/// transform: the symbolic reuse-distance histogram (= the full
/// fully-associative LRU miss curve), its knees, the per-level
/// predictions with conflict-interference corrections, the analytic
/// lower bound, and every typed conflict witness. No trace is replayed.
fn analyze_locality(flags: &ParsedFlags) -> Result<String, String> {
    let stencil = req_kernel(flags)?;
    let n = flags.usize("--n");
    if n < 3 {
        return Err("analyze requires --n >= 3".into());
    }
    let geometry: GeometryPreset = flags.parse_str("--geometry")?;
    let req = PlanRequest {
        query: PlanQuery::Locality { geometry },
        stencil,
        di: n,
        dj: n,
        nk: flags.usize("--nk"),
        cache: cache_spec(flags),
        transforms: transform_sel(flags)?,
        steps: 0,
        jobs: 1,
    };
    let resp = respond(&req)?;
    if json_format(flags)? {
        return Ok(format!("{}\n", resp.render()));
    }
    let PlanResponse::Locality(r) = &resp else {
        unreachable!("locality query answers with a locality report");
    };
    let (l1g, l2g) = r.geometry.levels();
    let mut out = format!(
        "static locality analysis: {} {}x{}x{}, geometry {} \
         (L1 {}KB {}-way/{}B, L2 {}KB {}-way/{}B)\n",
        r.stencil.kernel_name().unwrap_or("UNKNOWN"),
        r.n,
        r.n,
        r.nk,
        r.geometry.name(),
        l1g.size_bytes / 1024,
        l1g.ways,
        l1g.line_bytes,
        l2g.size_bytes / 1024,
        l2g.ways,
        l2g.line_bytes,
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "\n== {} ({}, alloc {}x{}) ==",
            row.plan.transform.name(),
            row.tile
                .map_or("untiled".into(), |(a, b)| format!("tile {a}x{b}")),
            row.plan.padded_di,
            row.plan.padded_dj,
        );
        let _ = writeln!(
            out,
            "  reuse-distance histogram ({:.0} accesses):",
            row.histogram.accesses
        );
        let _ = writeln!(
            out,
            "    {:<16}{:<9}{:>14}{:>14}",
            "class", "kind", "distance", "count"
        );
        for c in &row.histogram.classes {
            let _ = writeln!(
                out,
                "    {:<16}{:<9}{:>14.0}{:>14.0}",
                c.label,
                format!("{:?}", c.kind),
                c.distance,
                c.count
            );
        }
        let knees: Vec<String> = row
            .histogram
            .knees()
            .iter()
            .map(ToString::to_string)
            .collect();
        let _ = writeln!(out, "  miss-curve knees (elements): {}", knees.join(", "));
        for lp in [&row.l1, &row.l2] {
            let _ = writeln!(
                out,
                "  {}: predicted {:.2}% (fa {:.2}% + conflict {:.0} misses), bound {:.0} misses",
                lp.level,
                lp.miss_rate_pct,
                100.0 * lp.fa_misses / lp.accesses,
                lp.conflict_extra,
                lp.bound_misses,
            );
        }
        if row.l1.conflicts.witnesses.is_empty() && row.l2.conflicts.witnesses.is_empty() {
            let _ = writeln!(out, "  conflicts: none");
        }
        for (level, lp) in [("L1", &row.l1), ("L2", &row.l2)] {
            for w in &lp.conflicts.witnesses {
                let _ = writeln!(
                    out,
                    "  {} witness: {:?} refs {:?} window [{}, {}) period {} \
                     lines {} ways {} kill {:.2}{}",
                    level,
                    w.kind,
                    w.refs,
                    w.set_window.0,
                    w.set_window.1,
                    w.period_iters,
                    w.lines,
                    w.ways,
                    w.killed_fraction,
                    if lp.conflicts.pathological {
                        "  [PATHOLOGICAL]"
                    } else {
                        ""
                    },
                );
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// oracle
// ---------------------------------------------------------------------------

fn oracle_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d oracle",
        "simulated / predicted / bound miss table per transform and level",
        None,
        &[
            KERNEL_FLAG,
            FlagSpec::usize("--n", Some("120"), "problem size N"),
            FlagSpec::usize("--nk", Some("20"), "third-dimension extent"),
            CACHE_KB_FLAG,
            FlagSpec::str(
                "--transform",
                None,
                "transformation to check (default: all)",
            ),
            GEOMETRY_FLAG,
        ],
    )
}

/// `oracle`: the three-way cross-validation table. For each transform it
/// replays the exact kernel trace through the simulator *and* runs the
/// static model, printing `simulated / predicted / bound` per cache
/// level. The analytic lower bound holds for any replacement policy, so
/// `bound <= simulated` is asserted here — a violation is a model bug and
/// exits non-zero (the CI oracle gate).
fn cmd_oracle(flags: &ParsedFlags) -> Result<String, String> {
    let kernel = kernel(flags)?;
    let n = flags.usize("--n");
    if n < 3 {
        return Err("oracle requires --n >= 3".into());
    }
    let nk = flags.usize("--nk");
    let cache = cache_spec(flags);
    let g = analysis_geometry(flags)?;
    let transforms = requested_transforms(flags)?;
    struct OracleRow {
        transform: &'static str,
        level: &'static str,
        sim_pct: f64,
        pred_pct: f64,
        bound: f64,
        sim_misses: u64,
        pathological: bool,
    }
    let mut rows: Vec<OracleRow> = Vec::new();
    for &t in &transforms {
        let cell = locality_cell(kernel, t, cache, n, nk);
        let mut h = Hierarchy::new(g.l1_cfg, g.l2_cfg);
        replay_cell(kernel, &cell, &mut h);
        let acc = h.l1_stats().accesses as f64;
        let p1 = predict_level(&cell.model, cell.sched, &cell.prob, &g.l1);
        let p2 = predict_level(&cell.model, cell.sched, &cell.prob, &g.l2);
        let b2 = lower_bound_misses(&cell.model, &cell.prob, &g.l2, g.l1.capacity_elements());
        rows.push(OracleRow {
            transform: t.name(),
            level: "L1",
            sim_pct: 100.0 * h.l1_stats().misses as f64 / acc,
            pred_pct: p1.miss_rate_pct,
            bound: p1.bound_misses,
            sim_misses: h.l1_stats().misses,
            pathological: p1.conflicts.pathological,
        });
        rows.push(OracleRow {
            transform: t.name(),
            level: "L2",
            sim_pct: 100.0 * h.l2_stats().misses as f64 / acc,
            pred_pct: 100.0 * p2.misses / p2.accesses,
            bound: b2,
            sim_misses: h.l2_stats().misses,
            pathological: p2.conflicts.pathological,
        });
    }
    let violations: Vec<String> = rows
        .iter()
        .filter(|r| r.bound > r.sim_misses as f64 + 0.5)
        .map(|r| {
            format!(
                "{} {}: bound {:.0} exceeds simulated misses {}",
                r.transform, r.level, r.bound, r.sim_misses
            )
        })
        .collect();
    if json_format(flags)? {
        let jrows = rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("transform", Json::str(r.transform)),
                    ("level", Json::str(r.level)),
                    ("simulated_pct", Json::Num(r.sim_pct)),
                    ("predicted_pct", Json::Num(r.pred_pct)),
                    ("bound_misses", Json::Num(r.bound)),
                    ("simulated_misses", Json::uint(r.sim_misses)),
                    ("pathological", Json::Bool(r.pathological)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("kernel", Json::str(kernel.name())),
            ("n", Json::uint(n as u64)),
            ("nk", Json::uint(nk as u64)),
            ("geometry", Json::str(g.name)),
            ("bound_holds", Json::Bool(violations.is_empty())),
            ("rows", Json::Arr(jrows)),
        ]);
        let rendered = format!("{}\n", doc.render());
        return if violations.is_empty() {
            Ok(rendered)
        } else {
            Err(rendered)
        };
    }
    let mut out = format!(
        "locality oracle: {} {n}x{n}x{nk}, geometry {} — simulated vs predicted vs bound\n\
         {:<10}{:<5}{:>12}{:>12}{:>14}{:>8}\n",
        kernel.name(),
        g.name,
        "transform",
        "lvl",
        "simulated",
        "predicted",
        "bound",
        "flags"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<10}{:<5}{:>11.2}%{:>11.2}%{:>14.0}{:>8}",
            r.transform,
            r.level,
            r.sim_pct,
            r.pred_pct,
            r.bound,
            if r.pathological { "PATH" } else { "-" },
        );
    }
    if violations.is_empty() {
        let _ = writeln!(out, "lower bound holds on every row");
        Ok(out)
    } else {
        for v in &violations {
            let _ = writeln!(out, "BOUND VIOLATION: {v}");
        }
        Err(out)
    }
}

// ---------------------------------------------------------------------------
// measure
// ---------------------------------------------------------------------------

fn measure_flags() -> FlagSet {
    let mut flags = vec![
        KERNEL_FLAG,
        FlagSpec::usize("--n", Some("128"), "problem size N"),
        NK_FLAG,
        FlagSpec::str(
            "--transform",
            Some("orig"),
            "transformation to run (orig|euc3d|tile|pad|gcdpad)",
        ),
        FlagSpec::usize("--reps", Some("3"), "timed repetitions (best-of)"),
        JOBS_FLAG,
        BACKEND_FLAG,
    ];
    flags.extend_from_slice(policy_flags());
    FlagSet::new(
        "tiling3d measure",
        "wall-clock one backend's sweep, sequential vs K-slab parallel",
        None,
        &flags,
    )
}

/// `measure`: wall-clocks one kernel at one size on the selected
/// execution backend — the sequential sweep and the K-slab parallel sweep
/// across `--jobs` threads. Before timing, the parallel result is checked
/// bitwise against the sequential one from identical initial state
/// (jobs-invariance is a hard guarantee of the engine, so any divergence
/// is an `Err`, not a warning), and a non-row `--backend` is additionally
/// checked bitwise against the row engine.
fn cmd_measure(flags: &ParsedFlags) -> Result<String, String> {
    let kernel = kernel(flags)?;
    let n = flags.usize("--n");
    if n < 3 {
        return Err("measure requires --n >= 3".into());
    }
    let t: Transform = flags.str("--transform").parse()?;
    let backend: ExecBackend = flags.parse_str("--backend")?;
    let cfg = SweepConfig {
        n_min: n,
        n_max: n,
        step: 1,
        nk: flags.usize("--nk"),
        reps: flags.usize("--reps").max(1),
        jobs: flags.usize("--jobs"),
        backend,
        ..SweepConfig::default()
    };
    let jobs = cfg.pool().jobs();
    let p = tiling3d_bench::plan_for(&cfg, kernel, t, n);

    // Jobs-invariance gate: the parallel sweep must reproduce the
    // sequential sweep bit for bit from the same initial state — on the
    // selected backend, so the gate covers what the timed arms will run.
    let mut seq = kernel.make_state(n, cfg.nk, &p, 0x5EED);
    let mut par = seq.clone();
    kernel.run_with(&mut seq, p.tile, backend);
    kernel.run_parallel_with(&mut par, p.tile, jobs, backend);
    if !state_out(&seq).logical_eq(state_out(&par)) {
        return Err(format!(
            "measure: parallel {} sweep diverged from sequential at N = {n}, --jobs {jobs}",
            kernel.name()
        ));
    }
    // Cross-backend gate: a non-row backend must also reproduce the row
    // engine bitwise, so the timing comparison is between equal answers.
    if backend != ExecBackend::Row {
        let mut row = kernel.make_state(n, cfg.nk, &p, 0x5EED);
        kernel.run(&mut row, p.tile);
        if !state_out(&row).logical_eq(state_out(&seq)) {
            return Err(format!(
                "measure: {} backend diverged from the row engine at N = {n}",
                backend.name()
            ));
        }
    }

    // The timed arms run under the supervision path: panic-isolated,
    // retried, deadline-checked, and health-scanned (the sequential arm
    // goes through `measure_mflops_checked`, which scans the output grid
    // for NaN/Inf before accepting the timing).
    let opts = SweepOptions::from_flags(flags)?;
    let flops = kernel.sweep_flops(n, cfg.nk) as f64;
    let seq_mflops = supervise::supervise_item(&opts.policy, || {
        tiling3d_bench::measure_mflops_checked(&cfg, kernel, t, n, None)
    })
    .map_err(|e| format!("measure: sequential arm failed: {e}"))?;
    let par_mflops = supervise::supervise_item(&opts.policy, || {
        let v = tiling3d_bench::measure_mflops_parallel(&cfg, kernel, t, n, cfg.jobs);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(SweepError::Unhealthy {
                reason: format!("non-finite parallel MFlops ({v})"),
            })
        }
    })
    .map_err(|e| format!("measure: parallel arm failed: {e}"))?;
    let mut out = format!(
        "measure: {} {n}x{n}x{} ({}, {}, backend {}), {:.0} MFlop/sweep\n",
        kernel.name(),
        cfg.nk,
        t.name(),
        p.tile
            .map_or("untiled".into(), |(a, b)| format!("tile {a}x{b}")),
        backend.name(),
        flops / 1e6,
    );
    if backend == ExecBackend::Row {
        out.push_str("parallel result verified bitwise against sequential\n\n");
    } else {
        out.push_str(
            "parallel result verified bitwise against sequential; backend verified bitwise against row engine\n\n",
        );
    }
    let _ = writeln!(out, "{:<24}{:>12}{:>12}", "arm", "GFLOP/s", "speedup");
    let _ = writeln!(
        out,
        "{:<24}{:>12.3}{:>12}",
        "sequential",
        seq_mflops / 1e3,
        "1.00x"
    );
    let _ = writeln!(
        out,
        "{:<24}{:>12.3}{:>11.2}x",
        format!("parallel (--jobs {jobs})"),
        par_mflops / 1e3,
        par_mflops / seq_mflops
    );
    Ok(out)
}

/// The output array of a kernel state — the one a sweep writes.
fn state_out(state: &tiling3d_stencil::kernels::KernelState) -> &tiling3d_grid::Array3<f64> {
    use tiling3d_stencil::kernels::KernelState;
    match state {
        KernelState::Jacobi { a, .. } | KernelState::RedBlack { a } => a,
        KernelState::Resid { r, .. } => r,
    }
}

// ---------------------------------------------------------------------------
// profile
// ---------------------------------------------------------------------------

fn profile_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d profile",
        "run the plan+simulate pipeline with spans on; print the span tree",
        None,
        &[
            KERNEL_FLAG,
            FlagSpec::usize("--n", Some("64"), "problem size N"),
            NK_FLAG,
            JOBS_FLAG,
            STEPS_FLAG,
        ],
    )
}

/// `profile`: plans and simulates every transformation at one size with
/// span collection forced on, runs one parallel compute sweep per
/// execution backend under `compute:<KERNEL>:<backend>` spans (red-black
/// shows its two colour half-sweep phases as children), then renders the
/// span tree (per-phase wall-clock percentages, attached counters) and
/// the metric registry.
/// `--steps T` additionally runs the wavefront-parallel time-tiled sweep,
/// whose `timetile:*` span nests a `wavefront` span per anti-diagonal and
/// a `timeblock` span per tile. `--trace-out` additionally streams the
/// JSONL events; `--jobs N` shows the per-worker `SimPool` spans.
fn cmd_profile(flags: &ParsedFlags) -> Result<String, String> {
    let kernel = kernel(flags)?;
    let n = flags.usize("--n");
    if n < 3 {
        return Err("profile requires --n >= 3".into());
    }
    let steps = flags.usize("--steps");
    let tkern = if steps > 0 {
        Some(temporal_kernel(kernel)?)
    } else {
        None
    };
    let mut obs_cfg = obs::ObsConfig::from_flags(flags)?;
    obs_cfg.collect = true;
    obs::init(obs_cfg)?;
    let cfg = SweepConfig {
        n_min: n,
        n_max: n,
        step: 1,
        nk: flags.usize("--nk"),
        jobs: flags.usize("--jobs"),
        ..SweepConfig::default()
    };
    let (rows, tp) = simulate_grid(&cfg, kernel, &Transform::ALL);

    // One parallel sweep per execution backend, each under its own
    // `compute:<KERNEL>:<backend>` span, so the row and lane compute
    // phases show up side by side in the tree next to the simulation
    // phases. Red-black nests its `redblack:red` / `redblack:black`
    // colour half-sweeps underneath.
    {
        let p = tiling3d_bench::plan_for(&cfg, kernel, Transform::GcdPad, n);
        for backend in [ExecBackend::Row, ExecBackend::Lane] {
            let _compute = obs::span(&format!("compute:{}:{}", kernel.name(), backend.name()));
            let mut state = kernel.make_state(n, cfg.nk, &p, 0x5EED);
            kernel.run_parallel_with(&mut state, p.tile, cfg.pool().jobs(), backend);
        }
    }

    // Temporal mode: one wavefront-parallel time-tiled sweep. The tile
    // targets the last-level cache (the reuse time skewing carries spans
    // whole planes, not L1-sized tiles).
    if let Some(tk) = tkern {
        let jobs = cfg.pool().jobs();
        let tile = plan_temporal(
            tk,
            CacheSpec::from_bytes(8 * 1024 * 1024),
            n * n,
            steps,
            jobs,
        );
        let tt = TimeTile {
            st: tile.st,
            sk: tile.sk,
        };
        match tk {
            TemporalKernel::Jacobi => {
                let mut b0 = Array3::new(n, n, cfg.nk);
                fill_random(&mut b0, 0x5EED);
                let b1 = b0.clone();
                let mut bufs = [b0, b1];
                timetile::jacobi_time_tiled(&mut bufs, 1.0 / 6.0, steps, tt, jobs);
            }
            TemporalKernel::RedBlack => {
                let mut a = Array3::new(n, n, cfg.nk);
                fill_random(&mut a, 0x5EED);
                timetile::redblack_time_tiled(&mut a, 0.4, 0.1, steps, tt, jobs);
            }
        }
    }

    let trace = obs::shutdown().ok_or("profile: no trace collected")?;

    let mut out = format!(
        "profile: {} {n}x{n}x{}, all transforms, {} workers ({})\n\n",
        kernel.name(),
        cfg.nk,
        cfg.pool().jobs(),
        tp.summary(),
    );
    let _ = writeln!(
        out,
        "{:<10}{:>12}{:>12}",
        "transform", "L1 miss %", "L2 miss %"
    );
    for (_, points) in &rows {
        for (t, p) in Transform::ALL.iter().zip(points) {
            let _ = writeln!(out, "{:<10}{:>12.2}{:>12.2}", t.name(), p.l1_pct, p.l2_pct);
        }
    }
    out.push_str("\nspan tree (wall-clock, % of run):\n");
    out.push_str(&obs::render_tree(&trace));
    Ok(out)
}

// ---------------------------------------------------------------------------
// chaos
// ---------------------------------------------------------------------------

fn chaos_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d chaos",
        "seeded fault-injection campaign over a supervised sweep",
        None,
        &[
            KERNEL_FLAG,
            FlagSpec::usize("--min", Some("40"), "smallest problem size"),
            FlagSpec::usize("--max", Some("56"), "largest problem size"),
            FlagSpec::usize("--step", Some("8"), "size stride"),
            FlagSpec::usize("--nk", Some("8"), "third-dimension extent"),
            FlagSpec::usize("--seed", Some("42"), "campaign seed"),
            FlagSpec::usize("--faults", Some("2"), "points faulted per campaign"),
            FlagSpec::usize(
                "--retries",
                Some("1"),
                "retries per point in the recovery campaigns",
            ),
            JOBS_FLAG,
            FlagSpec::switch(
                "--serve",
                "target the serving layer: protocol fuzz + warm corruption + drain campaigns",
            ),
            FlagSpec::usize(
                "--rounds",
                Some("8"),
                "abuse rounds in the --serve fuzz campaign",
            ),
        ],
    )
}

/// Sleep a fault-injected delay lasts; the paired per-point deadline in
/// the delay campaigns is [`CHAOS_DEADLINE`]. The gap is wide enough that
/// a healthy point at the default chaos sizes never trips the deadline
/// while an injected delay always does, even on a slow debug build.
const CHAOS_DELAY: std::time::Duration = std::time::Duration::from_millis(600);
/// Per-point deadline during the delay campaigns.
const CHAOS_DEADLINE: std::time::Duration = std::time::Duration::from_millis(250);

/// Do two simulated points carry bit-identical metrics?
fn same_bits(a: &SimPoint, b: &SimPoint) -> bool {
    a.l1_pct.to_bits() == b.l1_pct.to_bits()
        && a.l2_pct.to_bits() == b.l2_pct.to_bits()
        && a.modeled.to_bits() == b.modeled.to_bits()
}

/// Does this terminal error match what the injected fault kind must
/// produce? (`root()` unwraps any `RetriesExhausted` wrapper.)
fn expected_error(kind: FaultKind, e: &SweepError) -> bool {
    match kind {
        FaultKind::Panic => matches!(e.root(), SweepError::Panicked { .. }),
        FaultKind::Delay(_) => matches!(e.root(), SweepError::DeadlineExceeded { .. }),
        FaultKind::NanWrite => matches!(e.root(), SweepError::Unhealthy { .. }),
    }
}

/// One chaos campaign: sweep under an armed fault plan, then check every
/// point against the fault-free baseline. Returns `(summary line, number
/// of violated expectations)`.
#[allow(clippy::too_many_arguments)]
fn chaos_campaign(
    cfg: &SweepConfig,
    kernel: Kernel,
    transforms: &[Transform],
    baseline: &[(usize, Vec<Result<SimPoint, SweepError>>)],
    label: &str,
    plan: FaultPlan,
    retries: u32,
    expect_recovery: bool,
) -> Result<(String, usize), String> {
    let kind = plan
        .kind_at(plan.armed().first().copied().unwrap_or_default())
        .unwrap_or(FaultKind::Panic);
    let armed: Vec<String> = plan.armed().iter().map(ToString::to_string).collect();
    let mut policy = supervise::SupervisePolicy {
        retries,
        backoff: std::time::Duration::from_millis(1),
        ..supervise::SupervisePolicy::default()
    };
    if matches!(kind, FaultKind::Delay(_)) {
        policy.deadline = Some(CHAOS_DEADLINE);
    }
    let opts = SweepOptions {
        policy,
        fault: Some(plan),
        ..SweepOptions::default()
    };
    let sg = simulate_grid_supervised(cfg, kernel, transforms, &opts)?;
    let mut violations = Vec::new();
    for ((n, row), (_, base_row)) in sg.rows.iter().zip(baseline) {
        for ((&t, got), base) in transforms.iter().zip(row).zip(base_row) {
            let key = checkpoint::point_key(kernel, t, *n, cfg.nk);
            let is_armed = armed.contains(&key);
            match (got, base) {
                (Ok(p), Ok(b)) => {
                    if is_armed && !expect_recovery {
                        violations.push(format!("{key}: fault injected but point succeeded"));
                    } else if !same_bits(p, b) {
                        violations.push(format!("{key}: result differs from fault-free baseline"));
                    }
                }
                (Err(e), Ok(_)) => {
                    if !is_armed {
                        violations.push(format!("{key}: unfaulted point failed: {e}"));
                    } else if expect_recovery {
                        violations.push(format!("{key}: expected recovery via retry, got: {e}"));
                    } else if !expected_error(kind, e) {
                        violations.push(format!("{key}: wrong error for {}: {e}", kind.name()));
                    }
                }
                (_, Err(e)) => return Err(format!("chaos: baseline point {key} failed: {e}")),
            }
        }
    }
    let verdict = if violations.is_empty() { "ok" } else { "!!" };
    let mut line = format!(
        "  [{verdict}] {label:<22} {} faulted, {} points checked",
        armed.len(),
        sg.report.total
    );
    for v in &violations {
        line.push_str(&format!("\n       {v}"));
    }
    Ok((line, violations.len()))
}

/// `chaos`: the deterministic fault-injection harness. Establishes a
/// fault-free baseline sweep, then runs six seeded campaigns — panic /
/// NaN-write / delay faults, each in always-fire (graceful-degradation)
/// and fire-once-plus-retry (recovery) mode — verifying typed errors at
/// exactly the armed points, bit-identical results everywhere else, and
/// full bit-identical recovery when retries can win. Exits non-zero on
/// any violated expectation.
fn cmd_chaos(flags: &ParsedFlags) -> Result<String, String> {
    if flags.switch("--serve") {
        return cmd_chaos_serve(flags);
    }
    let kernel = kernel(flags)?;
    let cfg = SweepConfig {
        n_min: flags.usize("--min"),
        n_max: flags.usize("--max"),
        step: flags.usize("--step").max(1),
        nk: flags.usize("--nk"),
        jobs: flags.usize("--jobs"),
        ..SweepConfig::default()
    };
    if cfg.n_min < 3 || cfg.n_max < cfg.n_min {
        return Err("chaos requires 3 <= --min <= --max".into());
    }
    let seed = flags.usize("--seed") as u64;
    let faults = flags.usize("--faults").max(1);
    let retries = u32::try_from(flags.usize("--retries").max(1)).unwrap_or(u32::MAX);
    supervise::silence_expected_panics();

    let transforms = Transform::ALL;
    let keys: Vec<String> = cfg
        .sizes()
        .iter()
        .flat_map(|&n| {
            transforms
                .iter()
                .map(move |&t| checkpoint::point_key(kernel, t, n, cfg.nk))
        })
        .collect();

    let base = simulate_grid_supervised(&cfg, kernel, &transforms, &SweepOptions::default())?;
    if !base.report.is_ok() {
        return Err(format!(
            "chaos: fault-free baseline failed:\n{}",
            base.report.summary()
        ));
    }

    let mut out = format!(
        "chaos: {} N = {}..{} step {} ({} points, {} workers), seed {seed}, {faults} fault(s)/campaign\n",
        kernel.name(),
        cfg.n_min,
        cfg.n_max,
        cfg.step,
        keys.len(),
        cfg.pool().jobs(),
    );
    let kinds = [
        FaultKind::Panic,
        FaultKind::NanWrite,
        FaultKind::Delay(CHAOS_DELAY),
    ];
    let mut total_violations = 0usize;
    for kind in kinds {
        // Graceful degradation: the fault fires on every attempt, so the
        // armed points must fail with the matching typed error.
        let plan = FaultPlan::seeded(seed, &keys, faults, kind, FaultMode::Always);
        let (line, v) = chaos_campaign(
            &cfg,
            kernel,
            &transforms,
            &base.rows,
            &format!("{}/always", kind.name()),
            plan,
            0,
            false,
        )?;
        out.push_str(&line);
        out.push('\n');
        total_violations += v;

        // Recovery: the fault fires once per point, so a retry completes
        // the sweep bit-identically to the fault-free baseline.
        let plan = FaultPlan::seeded(seed, &keys, faults, kind, FaultMode::Once);
        let (line, v) = chaos_campaign(
            &cfg,
            kernel,
            &transforms,
            &base.rows,
            &format!("{}/once+retry", kind.name()),
            plan,
            retries,
            true,
        )?;
        out.push_str(&line);
        out.push('\n');
        total_violations += v;
    }
    if total_violations > 0 {
        let _ = writeln!(out, "chaos: {total_violations} violated expectation(s)");
        return Err(out);
    }
    out.push_str("chaos: all campaigns passed\n");
    Ok(out)
}

/// The request spread the serving-layer campaigns replay (distinct query
/// kinds so the warm file carries several shard entries).
fn chaos_serve_requests() -> Vec<String> {
    vec![
        "{\"query\":\"plan\",\"stencil\":\"jacobi3d\",\"n\":200}".to_string(),
        "{\"query\":\"advise\",\"stencil\":\"jacobi3d\",\"n\":300}".to_string(),
        "{\"query\":\"legality\",\"kernel\":\"redblack\",\"n\":96}".to_string(),
        "{\"query\":\"euc3d\",\"stencil\":\"resid\",\"di\":200,\"dj\":200}".to_string(),
        "{\"query\":\"locality\",\"kernel\":\"jacobi\",\"n\":48,\"nk\":6}".to_string(),
    ]
}

/// `chaos --serve`: the serving-layer chaos harness (DESIGN.md §18).
/// Three campaigns against the hardened server: (1) the seeded protocol
/// fuzzer over a live TCP transport, (2) warm-start corruption recovery —
/// a byte is flipped at seeded offsets and every reboot must quarantine,
/// boot, and re-serve byte-identically, (3) graceful drain under load —
/// concurrent in-flight requests issued before shutdown must all flush
/// byte-identical to a cold service. Exits non-zero on any violation.
fn cmd_chaos_serve(flags: &ParsedFlags) -> Result<String, String> {
    use tiling3d_bench::fuzz;
    use tiling3d_bench::serve::PlanService;

    let seed = flags.usize("--seed") as u64;
    let rounds = flags.usize("--rounds").max(1);
    let limits = ServeLimits {
        max_conns: 32,
        conn_idle: std::time::Duration::from_millis(500),
        max_frame_bytes: 4096,
        drain_deadline: std::time::Duration::from_millis(2_000),
        compute_deadline: None,
    };
    let lines = chaos_serve_requests();
    let expected: Vec<String> = {
        let svc = PlanService::open(1, None, false)?;
        lines
            .iter()
            .map(|l| svc.handle_line(l).reply().to_string())
            .collect()
    };
    let mut out = format!("chaos --serve: seed {seed}, {rounds} abuse round(s)\n");
    let mut total_violations = 0usize;

    // Campaign 1: seeded protocol fuzzing over live TCP.
    {
        let handle = serve::start(ServeConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            limits,
            ..ServeConfig::default()
        })?;
        let addr = handle
            .tcp_addr()
            .ok_or("chaos --serve: no TCP address")?
            .to_string();
        let report = fuzz::campaign(&addr, &limits, seed, rounds);
        let verdict = if report.passed() { "ok" } else { "!!" };
        let _ = writeln!(
            out,
            "  [{verdict}] protocol-fuzz           {} round(s), {} failure(s)",
            report.rounds,
            report.failures.len()
        );
        for f in &report.failures {
            let _ = writeln!(out, "       {f}");
        }
        total_violations += report.failures.len();
        handle.request_shutdown();
        handle.wait();
    }

    // Campaign 2: warm-start corruption recovery. Flip one byte at seeded
    // offsets; every reboot must quarantine (or shed a torn tail), boot,
    // and re-serve the byte-identical answers.
    {
        let dir = std::env::temp_dir().join("tiling3d-chaos-serve");
        std::fs::create_dir_all(&dir).map_err(|e| format!("chaos --serve: tmp dir: {e}"))?;
        let warm = dir.join(format!("warm-{}.jsonl", std::process::id()));
        std::fs::remove_file(&warm).ok();
        {
            let svc = PlanService::open(2, Some(&warm), false)?;
            for l in &lines {
                svc.handle_line(l);
            }
        }
        let pristine =
            std::fs::read(&warm).map_err(|e| format!("chaos --serve: read warm file: {e}"))?;
        std::fs::remove_file(&warm).ok();
        let mut rng = tiling3d_grid::Xorshift64::new(seed | 1);
        let mut violations = Vec::new();
        let cases = 5usize;
        for _ in 0..cases {
            // Offset 1.. so the flip never lands on the final newline.
            let k = 1 + rng.next_below(pristine.len() - 2);
            let mut bytes = pristine.clone();
            bytes[k] ^= 0x5a;
            std::fs::write(&warm, &bytes)
                .map_err(|e| format!("chaos --serve: write corrupted warm file: {e}"))?;
            match PlanService::open(2, Some(&warm), true) {
                Err(e) => violations.push(format!("byte {k}: boot failed: {e}")),
                Ok(svc) => {
                    for (l, want) in lines.iter().zip(&expected) {
                        if svc.handle_line(l).reply() != want {
                            violations.push(format!("byte {k}: reply diverged for {l}"));
                        }
                    }
                }
            }
            std::fs::remove_file(&warm).ok();
            for n in 1..8 {
                std::fs::remove_file(format!("{}.corrupt-{n}", warm.display())).ok();
            }
        }
        let verdict = if violations.is_empty() { "ok" } else { "!!" };
        let _ = writeln!(
            out,
            "  [{verdict}] warm-corruption        {cases} corrupted boot(s), {} failure(s)",
            violations.len()
        );
        for v in &violations {
            let _ = writeln!(out, "       {v}");
        }
        total_violations += violations.len();
    }

    // Campaign 3: graceful drain under load. All in-flight requests
    // admitted before the drain must flush byte-identically.
    {
        let handle = serve::start(ServeConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            limits,
            ..ServeConfig::default()
        })?;
        let addr = handle.tcp_addr().ok_or("chaos --serve: no TCP address")?;
        let workers: Vec<_> = lines
            .iter()
            .cloned()
            .zip(expected.iter().cloned())
            .map(|(line, want)| {
                std::thread::spawn(move || -> Result<(), String> {
                    let mut s = TcpStream::connect(addr)
                        .map_err(|e| format!("drain client connect: {e}"))?;
                    let _ = s.set_nodelay(true);
                    s.write_all(format!("{line}\n").as_bytes())
                        .and_then(|()| s.flush())
                        .map_err(|e| format!("drain client send: {e}"))?;
                    let mut reply = String::new();
                    BufReader::new(&mut s)
                        .read_line(&mut reply)
                        .map_err(|e| format!("drain client receive: {e}"))?;
                    if reply.trim_end() == want {
                        Ok(())
                    } else {
                        Err(format!("drained reply for {line} diverged: {reply}"))
                    }
                })
            })
            .collect();
        let stats = &handle.service().stats;
        let gate = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while stats.requests.load(Ordering::Relaxed) < lines.len() as u64 {
            if std::time::Instant::now() > gate {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        handle.request_shutdown();
        let mut violations = Vec::new();
        for w in workers {
            match w.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => violations.push(e),
                Err(_) => violations.push("drain client panicked".to_string()),
            }
        }
        handle.wait();
        let verdict = if violations.is_empty() { "ok" } else { "!!" };
        let _ = writeln!(
            out,
            "  [{verdict}] drain-under-load       {} in-flight request(s), {} failure(s)",
            lines.len(),
            violations.len()
        );
        for v in &violations {
            let _ = writeln!(out, "       {v}");
        }
        total_violations += violations.len();
    }

    if total_violations > 0 {
        let _ = writeln!(
            out,
            "chaos --serve: {total_violations} violated expectation(s)"
        );
        return Err(out);
    }
    out.push_str("chaos --serve: all campaigns passed\n");
    Ok(out)
}

// ---------------------------------------------------------------------------
// trace-check
// ---------------------------------------------------------------------------

fn trace_check_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d trace-check",
        "validate a JSONL trace against the golden schema",
        Some(("trace", "path to a JSONL trace file")),
        &[FlagSpec::str(
            "--schema",
            None,
            "golden schema file (default: the built-in schema)",
        )],
    )
}

/// `trace-check`: parses every line of a JSONL trace, checks spans balance
/// (every open has a close, no duplicates), and diffs the event shapes
/// against the checked-in golden schema. Any drift is an `Err`, so CI can
/// gate on the exit code.
fn cmd_trace_check(flags: &ParsedFlags) -> Result<String, String> {
    let path = flags
        .positional()
        .ok_or("trace-check requires a trace file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let golden = match flags.try_str("--schema") {
        None => obs::validate::parse_schema(obs::GOLDEN_SCHEMA)?,
        Some(p) => {
            let s = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            obs::validate::parse_schema(&s)?
        }
    };
    let report = obs::validate::check_trace_str(&text, &golden);
    let summary = format!("{path}: {}", report.summary());
    if report.is_ok() {
        Ok(format!("{summary}\n"))
    } else {
        Err(summary)
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// serve / client
// ---------------------------------------------------------------------------

fn serve_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d serve",
        "the memoized planning server (newline-delimited JSON over TCP/unix)",
        None,
        &[
            FlagSpec::str(
                "--tcp",
                None,
                "TCP listen address, e.g. 127.0.0.1:7070 (port 0 picks a free one)",
            ),
            FlagSpec::str("--socket", None, "unix socket path to listen on"),
            FlagSpec::str(
                "--warm-start",
                None,
                "persistent warm-start cache file (fingerprinted JSONL)",
            ),
            FlagSpec::switch(
                "--no-resume",
                "truncate an existing warm-start file instead of reloading it",
            ),
            FlagSpec::usize("--shards", Some("0"), "cache shards (0 = one per core)"),
            FlagSpec::usize(
                "--max-conns",
                Some("256"),
                "connection budget; excess connections get a typed overloaded reply",
            ),
            FlagSpec::usize(
                "--conn-idle-ms",
                Some("10000"),
                "per-frame read budget and write timeout in milliseconds",
            ),
            FlagSpec::usize(
                "--max-frame-bytes",
                Some("1048576"),
                "largest accepted request frame; longer frames are rejected typed",
            ),
            FlagSpec::usize(
                "--drain-deadline-ms",
                Some("5000"),
                "hard stop for graceful drain after shutdown begins",
            ),
            FlagSpec::usize(
                "--compute-deadline-ms",
                Some("0"),
                "per-request compute deadline (0 = unlimited)",
            ),
        ],
    )
}

/// Builds the connection-layer limits from the `serve` flag surface.
fn serve_limits(flags: &ParsedFlags) -> Result<ServeLimits, String> {
    if flags.usize("--max-conns") == 0 {
        return Err("serve: --max-conns must be at least 1".into());
    }
    if flags.usize("--max-frame-bytes") < 64 {
        return Err("serve: --max-frame-bytes must be at least 64".into());
    }
    let ms = |flag: &str| std::time::Duration::from_millis(flags.usize(flag) as u64);
    Ok(ServeLimits {
        max_conns: flags.usize("--max-conns"),
        conn_idle: ms("--conn-idle-ms"),
        max_frame_bytes: flags.usize("--max-frame-bytes"),
        drain_deadline: ms("--drain-deadline-ms"),
        compute_deadline: match flags.usize("--compute-deadline-ms") {
            0 => None,
            n => Some(std::time::Duration::from_millis(n as u64)),
        },
    })
}

/// `serve`: run the plan server until a client sends `{"cmd":"shutdown"}`.
/// The listening lines go straight to stdout (so wrappers can wait for
/// them before connecting); the service summary is the command's result.
fn cmd_serve(flags: &ParsedFlags) -> Result<String, String> {
    let cfg = ServeConfig {
        tcp: flags.try_str("--tcp").map(ToString::to_string),
        unix: flags.try_str("--socket").map(PathBuf::from),
        warm: flags.try_str("--warm-start").map(PathBuf::from),
        resume: !flags.switch("--no-resume"),
        shards: flags.usize("--shards"),
        limits: serve_limits(flags)?,
    };
    let handle = serve::start(cfg)?;
    if let Some(q) = handle.service().quarantined() {
        println!(
            "serve: quarantined corrupt warm-start file to {}",
            q.display()
        );
    }
    if let Some(addr) = handle.tcp_addr() {
        println!("serve: listening on tcp {addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("serve: listening on unix {}", path.display());
    }
    let _ = std::io::stdout().flush();
    let service = Arc::clone(handle.service());
    handle.wait();
    let stats = &service.stats;
    let gauges = service.gauges();
    let (p50, p99) = stats.latency_percentiles();
    Ok(format!(
        "serve: shut down after {} request(s): {} hits, {} misses, {} errors, {} batch(es); \
         {} cached plan(s) across {} shard(s); latency p50 {p50} us, p99 {p99} us; \
         {} conn(s) total, {} shed, {} frame(s) rejected, drained in {} ms\n",
        stats.requests.load(Ordering::Relaxed),
        stats.hits.load(Ordering::Relaxed),
        stats.misses.load(Ordering::Relaxed),
        stats.errors.load(Ordering::Relaxed),
        stats.batches.load(Ordering::Relaxed),
        service.entries(),
        service.shards(),
        gauges.conns_total.load(Ordering::Relaxed),
        gauges.shed.load(Ordering::Relaxed),
        gauges.frame_rejects.load(Ordering::Relaxed),
        gauges.drain_ms.load(Ordering::Relaxed),
    ))
}

fn client_flags() -> FlagSet {
    FlagSet::new(
        "tiling3d client",
        "send one request line to a running plan server",
        Some((
            "REQUEST",
            "request JSON (object or batch array), or ping|stats|health|shutdown",
        )),
        &[
            FlagSpec::str("--tcp", Some("127.0.0.1:7070"), "server TCP address"),
            FlagSpec::str(
                "--socket",
                None,
                "server unix socket path (overrides --tcp)",
            ),
            FlagSpec::usize(
                "--retries",
                Some("1"),
                "connect retries after a refused/reset connection",
            ),
            FlagSpec::usize(
                "--backoff-ms",
                Some("10"),
                "backoff before the first retry; doubles each retry, with jitter",
            ),
        ],
    )
}

/// `client`: one request line in, one reply line out — the same wire
/// protocol `socat`/`nc` speak (see README). A refused or reset
/// connection is retried `--retries` times with exponential backoff and
/// jitter (the [`supervise::SupervisePolicy`] defaults); once exhausted
/// the command fails with a typed `unavailable` error and a nonzero exit.
fn cmd_client(flags: &ParsedFlags) -> Result<String, String> {
    let raw = flags
        .positional()
        .ok_or("client requires a REQUEST (JSON, or ping|stats|health|shutdown)")?;
    let line = match raw {
        "ping" | "stats" | "health" | "shutdown" => format!("{{\"cmd\":\"{raw}\"}}"),
        _ => raw.to_string(),
    };
    let retries = u32::try_from(flags.usize("--retries")).unwrap_or(u32::MAX);
    let mut backoff = std::time::Duration::from_millis(flags.usize("--backoff-ms") as u64);
    // Deterministic-per-process jitter (seeded xorshift, the bench::fault
    // idiom) decorrelates concurrent clients without a clock dependency.
    let mut jitter = tiling3d_grid::Xorshift64::new(u64::from(std::process::id()) | 1);
    let attempts = retries.saturating_add(1);
    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            let pause = backoff.mul_f64(1.0 + jitter.next_f64());
            std::thread::sleep(pause);
            backoff = backoff.saturating_mul(2);
        }
        match client_attempt(flags, &line) {
            Ok(reply) => return Ok(format!("{reply}\n")),
            Err(e) => last = e,
        }
    }
    Err(format!(
        "{}\nclient: {attempts} attempt(s) exhausted: {last}",
        serve::wire_error(
            "unavailable",
            &format!("no reply after {attempts} attempt(s)"),
        )
    ))
}

/// One connection attempt against whichever transport the flags select.
fn client_attempt(flags: &ParsedFlags, line: &str) -> Result<String, String> {
    if let Some(path) = flags.try_str("--socket") {
        let stream =
            UnixStream::connect(path).map_err(|e| format!("client: connect {path}: {e}"))?;
        client_roundtrip(stream, line)
    } else {
        let addr = flags.str("--tcp");
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("client: connect {addr}: {e}"))?;
        // One line out, one line back: Nagle coalescing only adds latency.
        let _ = stream.set_nodelay(true);
        client_roundtrip(stream, line)
    }
}

fn client_roundtrip<S: std::io::Read + std::io::Write>(
    mut stream: S,
    line: &str,
) -> Result<String, String> {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("client: send: {e}"))?;
    stream.flush().map_err(|e| format!("client: send: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("client: receive: {e}"))?;
    if reply.is_empty() {
        return Err("client: server closed the connection without a reply".into());
    }
    Ok(reply.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, String> {
        let raw: Vec<String> = line.split_whitespace().map(ToString::to_string).collect();
        run_argv(&raw)
    }

    #[test]
    fn plan_shows_all_transforms() {
        let out = run_line("plan --stencil jacobi3d --dims 341x341").unwrap();
        for name in ["Orig", "Tile", "Euc3D", "GcdPad", "Pad", "GcdPadNT"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(
            out.contains("110x4"),
            "Euc3D's pathological tile should appear:\n{out}"
        );
    }

    #[test]
    fn plan_json_is_parseable_and_complete() {
        let out = run_line("plan --stencil jacobi3d --dims 341x341 --format json").unwrap();
        let doc = obs::json::parse(&out).unwrap();
        assert_eq!(doc.get("di").and_then(Json::as_f64), Some(341.0));
        let plans = match doc.get("plans") {
            Some(Json::Arr(a)) => a,
            other => panic!("plans should be an array, got {other:?}"),
        };
        assert_eq!(plans.len(), Transform::ALL.len());
        let euc = plans
            .iter()
            .find(|p| p.get("transform").and_then(Json::as_str) == Some("Euc3D"))
            .unwrap();
        match euc.get("tile") {
            Some(Json::Arr(t)) => {
                assert_eq!(t[0].as_f64(), Some(110.0), "pathological 341 tile");
                assert_eq!(t[1].as_f64(), Some(4.0));
            }
            other => panic!("Euc3D tile should be an array, got {other:?}"),
        }
    }

    #[test]
    fn tiles_reproduces_table1_values() {
        let out = run_line("tiles --di 200 --dj 200").unwrap();
        assert!(out.contains("2048"));
        // The (TK=3, TJ=15, TI=24) row.
        assert!(out.lines().any(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            f == ["3", "15", "24"]
        }));
    }

    #[test]
    fn tiles_json_carries_the_table1_row() {
        let out = run_line("tiles --di 200 --dj 200 --format json").unwrap();
        let doc = obs::json::parse(&out).unwrap();
        let tiles = match doc.get("tiles") {
            Some(Json::Arr(a)) => a,
            other => panic!("tiles should be an array, got {other:?}"),
        };
        assert!(tiles.iter().any(|t| {
            t.get("tk").and_then(Json::as_f64) == Some(3.0)
                && t.get("tj").and_then(Json::as_f64) == Some(15.0)
                && t.get("ti").and_then(Json::as_f64) == Some(24.0)
        }));
    }

    #[test]
    fn advise_matches_the_paper_boundaries() {
        let out = run_line("advise --stencil jacobi3d --n 33").unwrap();
        assert!(out.contains("up to plane extent 32"));
        assert!(out.contains("TileInnerTwo"));
        let out2 = run_line("advise --stencil jacobi2d --n 500").unwrap();
        assert!(out2.contains("NotNeeded"));
        let j = run_line("advise --stencil jacobi3d --n 33 --format json").unwrap();
        let doc = obs::json::parse(&j).unwrap();
        assert_eq!(doc.get("reuse_bound").and_then(Json::as_f64), Some(32.0));
        assert_eq!(
            doc.get("verdict").and_then(Json::as_str),
            Some("TileInnerTwo")
        );
    }

    #[test]
    fn simulate_reports_rates() {
        let out = run_line("simulate --kernel jacobi --n 64 --nk 8 --transform gcdpad").unwrap();
        assert!(out.contains("L1 miss rate"));
        assert!(out.contains("GcdPad"));
    }

    #[test]
    fn simulate_verifies_a_nonrow_backend() {
        let out =
            run_line("simulate --kernel jacobi --n 48 --nk 6 --transform gcdpad --backend lane")
                .unwrap();
        assert!(out.contains("backend lane"), "{out}");
        assert!(out.contains("verified bitwise"), "{out}");
        // The trace replay is backend-independent, so the multi-replay
        // modes reject a non-default backend instead of ignoring it.
        let err = run_line("simulate --kernel jacobi --n 48 --nk 6 --transform all --backend lane")
            .unwrap_err();
        assert!(err.contains("single-transform"), "{err}");
        let err = run_line("simulate --kernel jacobi --n 48 --backend martian").unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
    }

    #[test]
    fn measure_times_each_backend() {
        for backend in ["row", "lane", "auto"] {
            let out = run_line(&format!(
                "measure --kernel redblack --n 32 --nk 6 --reps 1 --jobs 2 --backend {backend}"
            ))
            .unwrap_or_else(|e| panic!("{backend}: {e}"));
            assert!(out.contains(&format!("backend {backend}")), "{out}");
            assert!(out.contains("GFLOP/s"), "{out}");
        }
    }

    #[test]
    fn simulate_all_is_jobs_invariant() {
        let seq = run_line("simulate --kernel jacobi --n 48 --nk 6 --transform all --jobs 1");
        let par = run_line("simulate --kernel jacobi --n 48 --nk 6 --transform all --jobs 4");
        let strip = |s: &str| {
            // Drop the header line (worker count differs by construction).
            s.lines().skip(1).collect::<Vec<_>>().join("\n")
        };
        let (seq, par) = (seq.unwrap(), par.unwrap());
        assert_eq!(strip(&seq), strip(&par));
        for name in ["Orig", "Tile", "Euc3D", "GcdPad", "Pad", "GcdPadNT"] {
            assert!(seq.contains(name), "missing {name} in:\n{seq}");
        }
    }

    #[test]
    fn predict_untiled_and_tiled() {
        let out = run_line("predict --kernel jacobi --n 280 --nk 30").unwrap();
        assert!(out.contains("25.00%"), "{out}");
        let out = run_line("predict --kernel jacobi --n 280 --nk 30 --tile 30x14").unwrap();
        assert!(out.contains("%"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(run_line("plan").unwrap_err().contains("--dims"));
        let unknown = run_line("bogus").unwrap_err();
        assert!(unknown.contains("unknown command"));
        assert!(unknown.contains("analyze"), "usage must list analyze");
        assert!(run_line("plan --dims nope --stencil jacobi3d")
            .unwrap_err()
            .contains("AxB"));
        assert!(run_line("simulate --kernel martian --n 50")
            .unwrap_err()
            .contains("unknown kernel"));
        assert!(run_line("analyze --kernel martian")
            .unwrap_err()
            .contains("unknown kernel"));
    }

    #[test]
    fn unknown_and_malformed_flags_are_rejected() {
        let err = run_line("plan --bogus-flag 1").unwrap_err();
        assert!(err.contains("unknown flag '--bogus-flag'"), "{err}");
        assert!(err.contains("usage: tiling3d plan"), "{err}");
        let err = run_line("simulate --n abc").unwrap_err();
        assert!(err.contains("expected a number"), "{err}");
        let err = run_line("plan --dims 10x10 --format yaml").unwrap_err();
        assert!(err.contains("unsupported format"), "{err}");
    }

    #[test]
    fn usage_is_generated_from_the_command_table() {
        // Every command appears in the top-level usage, resolves through
        // run_argv (no "unknown command"), and has per-command usage via
        // --help that lists every declared flag including the obs set.
        let u = usage();
        for c in COMMANDS {
            assert!(u.contains(c.name), "usage() is missing '{}'", c.name);
            let res = run_argv(&[c.name.to_string()]);
            if let Err(e) = res {
                assert!(
                    !e.contains("unknown command"),
                    "'{}' is in COMMANDS but not dispatched: {e}",
                    c.name
                );
            }
            let help = run_argv(&[c.name.to_string(), "--help".to_string()]).unwrap_err();
            for f in (c.flag_set)().flags() {
                assert!(
                    help.contains(f.name),
                    "{} --help is missing {}: {help}",
                    c.name,
                    f.name
                );
            }
            assert!(help.contains("--trace-out"), "{help}");
        }
    }

    #[test]
    fn analyze_certifies_every_kernel_transform_pair() {
        for kernel in ["jacobi", "redblack", "resid"] {
            let out = run_line(&format!("analyze --kernel {kernel} --transform all"))
                .unwrap_or_else(|e| panic!("{kernel}: {e}"));
            assert!(out.contains("all analyzed schedules are legal"), "{out}");
            for name in ["Orig", "Tile", "Euc3D", "GcdPad", "Pad", "GcdPadNT"] {
                assert!(out.contains(name), "missing {name} in:\n{out}");
            }
        }
    }

    #[test]
    fn analyze_rejects_unskewed_fused_redblack_with_witness() {
        let err = run_line("analyze --kernel redblack --transform gcdpad --no-skew").unwrap_err();
        assert!(err.contains("ILLEGAL"), "{err}");
        // The paper's plane-spanning flow dependence is the witness.
        assert!(err.contains("[1, 1, -1, 0]"), "witness missing:\n{err}");
        assert!(err.contains("refusing to certify"), "{err}");
        // Untiled transforms stay legal even without the skew.
        let ok = run_line("analyze --kernel redblack --transform orig --no-skew").unwrap();
        assert!(ok.contains("legal"), "{ok}");
    }

    #[test]
    fn analyze_json_reports_verdicts_and_still_fails_when_illegal() {
        let out = run_line("analyze --kernel redblack --transform all --format json").unwrap();
        let doc = obs::json::parse(&out).unwrap();
        assert_eq!(
            doc.get("all_legal").map(|j| matches!(j, Json::Bool(true))),
            Some(true),
            "{out}"
        );
        let err = run_line("analyze --kernel redblack --transform gcdpad --no-skew --format json")
            .unwrap_err();
        let doc = obs::json::parse(&err).unwrap();
        assert!(
            matches!(doc.get("all_legal"), Some(Json::Bool(false))),
            "{err}"
        );
    }

    #[test]
    fn analyze_shows_dependences_and_schedule() {
        let out = run_line("analyze --kernel redblack --transform gcdpad").unwrap();
        assert!(out.contains("KK"), "fused dims in:\n{out}");
        assert!(out.contains("flow"), "{out}");
        assert!(out.contains("anti"), "{out}");
        assert!(out.contains("skew"), "schedule steps in:\n{out}");
        assert!(out.contains("LEGAL"), "{out}");
    }

    #[test]
    fn plan_with_steps_adds_a_certified_temporal_tile() {
        let out = run_line("plan --stencil jacobi3d --dims 341x341 --steps 8 --jobs 2").unwrap();
        assert!(out.contains("temporal plan"), "{out}");
        assert!(out.contains("certified legal"), "{out}");
        let j = run_line("plan --stencil jacobi3d --dims 341x341 --steps 8 --jobs 2 --format json")
            .unwrap();
        let doc = obs::json::parse(&j).unwrap();
        let t = doc.get("temporal").expect("temporal object");
        assert!(matches!(t.get("legal"), Some(Json::Bool(true))), "{j}");
        assert!(t.get("st").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(t.get("sk").and_then(Json::as_f64).unwrap() >= 1.0);
        // Without --steps the plan output is unchanged (no temporal key).
        let plain = run_line("plan --stencil jacobi3d --dims 341x341 --format json").unwrap();
        assert!(obs::json::parse(&plain).unwrap().get("temporal").is_none());
        // RESID has no iterated form.
        let err = run_line("plan --stencil resid --dims 100x100 --steps 4").unwrap_err();
        assert!(err.contains("no iterated form"), "{err}");
    }

    #[test]
    fn advise_with_steps_reports_the_temporal_tile() {
        let out = run_line("advise --stencil jacobi3d --n 33 --steps 8 --jobs 1").unwrap();
        assert!(out.contains("time tile (ST, SK)"), "{out}");
        let j =
            run_line("advise --stencil jacobi3d --n 33 --steps 8 --jobs 1 --format json").unwrap();
        let doc = obs::json::parse(&j).unwrap();
        assert!(doc.get("temporal").is_some(), "{j}");
        let err = run_line("advise --stencil jacobi2d --n 100 --steps 4").unwrap_err();
        assert!(err.contains("no iterated form"), "{err}");
    }

    #[test]
    fn simulate_steps_shows_cross_timestep_miss_reduction() {
        // 16x16 planes, 2 buffers, 32 KB cache: the band holds several
        // planes, while the full 16x16x32 grid busts the cache — so the
        // naive T-sweep re-streams every step and time tiling must cut
        // L1 read misses.
        let out =
            run_line("simulate --kernel jacobi --n 16 --nk 32 --steps 8 --cache-kb 32 --jobs 1")
                .unwrap();
        assert!(out.contains("time-tiled"), "{out}");
        let line = out
            .lines()
            .find(|l| l.contains("reduction"))
            .unwrap_or_else(|| panic!("no reduction line in:\n{out}"));
        let pct: f64 = line
            .split(':')
            .nth(1)
            .and_then(|s| s.trim().split('%').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable reduction line: {line}"));
        assert!(pct > 5.0, "expected a real reduction, got {pct}%:\n{out}");
        // Red-black single-buffer variant renders too.
        let rb =
            run_line("simulate --kernel redblack --n 16 --nk 32 --steps 4 --cache-kb 32").unwrap();
        assert!(rb.contains("time-tiled"), "{rb}");
        let err = run_line("simulate --kernel resid --n 16 --steps 4").unwrap_err();
        assert!(err.contains("temporal"), "{err}");
    }

    #[test]
    fn analyze_temporal_certifies_and_rejects_rectangular_with_witness() {
        for k in ["jacobi", "redblack"] {
            let out = run_line(&format!("analyze --kernel {k} --temporal"))
                .unwrap_or_else(|e| panic!("{k}: {e}"));
            assert!(out.contains("legal"), "{out}");
        }
        let err = run_line("analyze --kernel jacobi --temporal --no-skew").unwrap_err();
        assert!(err.contains("ILLEGAL"), "{err}");
        // The witness: the flow distance (1, -1, ...) the rectangular
        // band tile controllers reverse.
        assert!(err.contains("[1, -1"), "witness missing:\n{err}");
        let json =
            run_line("analyze --kernel jacobi --temporal --no-skew --format json").unwrap_err();
        let doc = obs::json::parse(&json).unwrap();
        assert!(
            matches!(doc.get("legal"), Some(Json::Bool(false))),
            "{json}"
        );
        let err = run_line("analyze --kernel resid --temporal").unwrap_err();
        assert!(err.contains("temporal"), "{err}");
    }

    #[test]
    fn chaos_campaigns_pass_and_are_jobs_invariant() {
        for jobs in [1, 4] {
            let out = run_line(&format!(
                "chaos --kernel jacobi --min 16 --max 24 --step 8 --nk 4 --seed 7 --faults 1 --jobs {jobs}"
            ))
            .unwrap_or_else(|e| panic!("chaos failed at --jobs {jobs}:\n{e}"));
            assert!(out.contains("all campaigns passed"), "{out}");
            for label in [
                "panic/always",
                "panic/once+retry",
                "nan-write/always",
                "nan-write/once+retry",
                "delay/always",
                "delay/once+retry",
            ] {
                assert!(out.contains(label), "missing campaign {label}:\n{out}");
            }
        }
    }

    #[test]
    fn chaos_rejects_degenerate_sizes() {
        let err = run_line("chaos --min 2 --max 1").unwrap_err();
        assert!(err.contains("chaos requires"), "{err}");
    }

    #[test]
    fn trace_check_rejects_missing_files_and_bad_lines() {
        let err = run_line("trace-check /nonexistent/trace.jsonl").unwrap_err();
        assert!(err.contains("/nonexistent/trace.jsonl"), "{err}");
        let path = std::env::temp_dir().join(format!("t3d-bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"ev\":\"span_open\"").unwrap();
        let err = run_argv(&["trace-check".into(), path.display().to_string()]).unwrap_err();
        assert!(err.contains("error"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
