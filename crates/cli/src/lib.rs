//! Command implementations for the `tiling3d` CLI.
//!
//! Each subcommand is a pure function from parsed arguments to a rendered
//! `String`, so the whole surface is unit-testable without spawning
//! processes; `main.rs` is a thin argv shim.
//!
//! ```text
//! tiling3d plan     --stencil jacobi3d --dims 341x341 [--cache-kb 16] [--line 32]
//! tiling3d tiles    --di 200 --dj 200 [--cache 2048] [--tkmax 4]
//! tiling3d advise   --stencil jacobi3d --n 300 [--cache-kb 16]
//! tiling3d simulate --kernel resid --n 341 [--nk 30] [--transform gcdpad|all] [--jobs N]
//! tiling3d predict  --kernel jacobi --n 280 [--nk 30] [--tile 30x14]
//! tiling3d analyze  --kernel redblack [--transform gcdpad|all] [--n 200] [--no-skew]
//! ```
//!
//! `simulate --transform all` replays every transformation's trace, one
//! pool worker per transform (`--jobs 0` / default = all cores); the
//! reported miss rates are identical for any worker count.
//!
//! `analyze` runs the dependence-based legality analyzer: it prints each
//! schedule's dependence set, transformation steps and verdict, and exits
//! non-zero if any analyzed schedule is illegal — `--no-skew` requests the
//! rectangular (unskewed) tiling of the fused red-black schedule, the
//! known-illegal case, which the analyzer rejects with the broken distance
//! vector as witness.

#![warn(missing_docs)]

use std::fmt::Write as _;

use tiling3d_bench::SimPool;
use tiling3d_cachesim::{CacheConfig, Hierarchy};
use tiling3d_core::legality::certificate_for;
use tiling3d_core::nonconflict::enumerate_array_tiles;
use tiling3d_core::predict::{predict_tiled, predict_untiled, SweepSpec};
use tiling3d_core::{plan, CacheSpec, Transform};
use tiling3d_loopnest::{reuse, StencilShape};
use tiling3d_stencil::kernels::Kernel;

/// Parsed `--key value` arguments plus the subcommand word.
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    rest: Vec<String>,
}

impl Args {
    /// Parses a raw argument list (without the program name).
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let command = raw.first().cloned().ok_or_else(usage)?;
        Ok(Args {
            command,
            rest: raw[1..].to_vec(),
        })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    fn num(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{key}: expected a number, got '{v}'")),
        }
    }

    fn pair(&self, key: &str) -> Result<Option<(usize, usize)>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => {
                let (a, b) = v
                    .split_once('x')
                    .ok_or_else(|| format!("{key}: expected AxB, got '{v}'"))?;
                Ok(Some((
                    a.parse().map_err(|_| format!("{key}: bad number '{a}'"))?,
                    b.parse().map_err(|_| format!("{key}: bad number '{b}'"))?,
                )))
            }
        }
    }

    fn stencil(&self) -> Result<StencilShape, String> {
        match self.get("--stencil").unwrap_or("jacobi3d") {
            "jacobi3d" => Ok(StencilShape::jacobi3d()),
            "jacobi2d" => Ok(StencilShape::jacobi2d()),
            "redblack" | "redblack3d" => Ok(StencilShape::redblack3d_fused()),
            "resid" | "resid27" => Ok(StencilShape::resid27()),
            other => Err(format!("unknown stencil '{other}'")),
        }
    }

    fn kernel(&self) -> Result<Kernel, String> {
        match self.get("--kernel").unwrap_or("jacobi") {
            "jacobi" => Ok(Kernel::Jacobi),
            "redblack" => Ok(Kernel::RedBlack),
            "resid" => Ok(Kernel::Resid),
            other => Err(format!("unknown kernel '{other}'")),
        }
    }

    fn transform(&self) -> Result<Transform, String> {
        match self
            .get("--transform")
            .unwrap_or("pad")
            .to_lowercase()
            .as_str()
        {
            "orig" => Ok(Transform::Orig),
            "tile" => Ok(Transform::Tile),
            "euc3d" => Ok(Transform::Euc3D),
            "gcdpad" => Ok(Transform::GcdPad),
            "pad" => Ok(Transform::Pad),
            "gcdpadnt" => Ok(Transform::GcdPadNT),
            other => Err(format!("unknown transform '{other}'")),
        }
    }

    fn cache_spec(&self) -> Result<CacheSpec, String> {
        let kb = self.num("--cache-kb", 16)?;
        Ok(CacheSpec::from_bytes(kb * 1024))
    }

    fn flag(&self, key: &str) -> bool {
        self.rest.iter().any(|a| a == key)
    }
}

/// Every dispatched subcommand, in usage order. [`usage`] and [`run`] are
/// both derived from this list, so they cannot drift apart.
pub const COMMANDS: [&str; 6] = ["plan", "tiles", "advise", "simulate", "predict", "analyze"];

/// Usage string (also the error for a missing subcommand).
pub fn usage() -> String {
    format!(
        "usage: tiling3d <{}> [--key value ...]\n\
         see `cargo doc -p tiling3d-cli` for the full flag reference",
        COMMANDS.join("|")
    )
}

/// Dispatches a parsed command.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "plan" => cmd_plan(args),
        "tiles" => cmd_tiles(args),
        "advise" => cmd_advise(args),
        "simulate" => cmd_simulate(args),
        "predict" => cmd_predict(args),
        "analyze" => cmd_analyze(args),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn cmd_plan(args: &Args) -> Result<String, String> {
    let shape = args.stencil()?;
    let (di, dj) = args.pair("--dims")?.ok_or("plan requires --dims AxB")?;
    let cache = args.cache_spec()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "planning for a {di}x{dj}xM array, stencil {} (m={}, n={}, ATD={}), cache {} doubles",
        shape.name(),
        shape.m(),
        shape.n(),
        shape.atd(),
        cache.elements
    );
    let _ = writeln!(
        out,
        "{:<10}{:>12}{:>16}{:>12}",
        "transform", "tile", "padded dims", "model cost"
    );
    for t in Transform::ALL {
        let p = plan(t, cache, di, dj, &shape);
        let _ = writeln!(
            out,
            "{:<10}{:>12}{:>16}{:>12}",
            t.name(),
            p.tile.map_or("-".into(), |(a, b)| format!("{a}x{b}")),
            format!("{}x{}", p.padded_di, p.padded_dj),
            if p.cost.is_finite() {
                format!("{:.4}", p.cost)
            } else {
                "-".into()
            },
        );
    }
    Ok(out)
}

fn cmd_tiles(args: &Args) -> Result<String, String> {
    let di = args.num("--di", 200)?;
    let dj = args.num("--dj", di)?;
    let cache = args.num("--cache", 2048)?;
    let tkmax = args.num("--tkmax", 4)?;
    let tiles = enumerate_array_tiles(cache, di, dj, tkmax);
    let mut out =
        format!("maximal non-conflicting array tiles, {di}x{dj}xM array, {cache}-element cache:\n");
    let _ = writeln!(out, "{:>4}{:>6}{:>6}", "TK", "TJ", "TI");
    for t in &tiles {
        let _ = writeln!(out, "{:>4}{:>6}{:>6}", t.tk, t.tj, t.ti);
    }
    Ok(out)
}

fn cmd_advise(args: &Args) -> Result<String, String> {
    let shape = args.stencil()?;
    let n = args.num("--n", 0)?;
    if n == 0 {
        return Err("advise requires --n".into());
    }
    let cache = args.cache_spec()?;
    let mut out = String::new();
    if shape.atd() == 1 {
        let bound = reuse::max_column_extent_2d(cache.elements, &shape);
        let verdict = reuse::advise_2d(cache.elements, &shape, n);
        let _ = writeln!(
            out,
            "2D stencil {}: group reuse survives up to column length {bound}; \
             at N = {n}: {verdict:?}",
            shape.name()
        );
    } else {
        let bound = reuse::max_plane_extent(cache.elements, &shape);
        let verdict = reuse::advise_3d(cache.elements, &shape, n);
        let _ = writeln!(
            out,
            "3D stencil {}: K-loop reuse survives up to plane extent {bound}; \
             at N = {n}: {verdict:?}",
            shape.name()
        );
        let dist = reuse::k_reuse_distance(&shape, n, n);
        let _ = writeln!(
            out,
            "reuse distance across K at N = {n}: {dist} elements ({} KB)",
            dist * 8 / 1024
        );
    }
    Ok(out)
}

fn cmd_simulate(args: &Args) -> Result<String, String> {
    let kernel = args.kernel()?;
    let n = args.num("--n", 0)?;
    if n < 3 {
        return Err("simulate requires --n >= 3".into());
    }
    let nk = args.num("--nk", 30)?;
    let cache = args.cache_spec()?;
    let l1 = CacheConfig::direct_mapped(cache.elements * 8, args.num("--line", 32)?);
    l1.validate()
        .map_err(|e| format!("bad cache geometry: {e}"))?;
    if args
        .get("--transform")
        .is_some_and(|t| t.eq_ignore_ascii_case("all"))
    {
        return simulate_all(args, kernel, n, nk, cache, l1);
    }
    let t = args.transform()?;
    let p = plan(t, cache, n, n, &kernel.shape());
    let mut h = Hierarchy::new(l1, CacheConfig::ULTRASPARC2_L2);
    kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut h);
    Ok(format!(
        "{} {n}x{n}x{nk} under {}: tile {:?}, dims {}x{}\n\
         L1 miss rate {:.2}% ({} misses / {} accesses); L2 miss rate {:.2}%\n",
        kernel.name(),
        t.name(),
        p.tile,
        p.padded_di,
        p.padded_dj,
        h.l1_miss_rate_pct(),
        h.l1_stats().misses,
        h.l1_stats().accesses,
        h.l2_miss_rate_pct(),
    ))
}

/// `simulate --transform all`: every transformation's trace, sharded one
/// per pool worker. Transform order (and therefore output) is fixed;
/// worker count only changes wall time.
fn simulate_all(
    args: &Args,
    kernel: Kernel,
    n: usize,
    nk: usize,
    cache: CacheSpec,
    l1: CacheConfig,
) -> Result<String, String> {
    let pool = SimPool::new(args.num("--jobs", 0)?);
    let rows = pool.map(&Transform::ALL, |&t| {
        let p = plan(t, cache, n, n, &kernel.shape());
        let mut h = Hierarchy::new(l1, CacheConfig::ULTRASPARC2_L2);
        kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut h);
        (p, h)
    });
    let mut out = format!(
        "{} {n}x{n}x{nk}, all transforms ({} workers):\n{:<10}{:>10}{:>14}{:>12}{:>12}\n",
        kernel.name(),
        pool.jobs(),
        "transform",
        "tile",
        "padded dims",
        "L1 miss %",
        "L2 miss %"
    );
    for (&t, (p, h)) in Transform::ALL.iter().zip(&rows) {
        let _ = writeln!(
            out,
            "{:<10}{:>10}{:>14}{:>12.2}{:>12.2}",
            t.name(),
            p.tile.map_or("-".into(), |(a, b)| format!("{a}x{b}")),
            format!("{}x{}", p.padded_di, p.padded_dj),
            h.l1_miss_rate_pct(),
            h.l2_miss_rate_pct(),
        );
    }
    Ok(out)
}

fn cmd_predict(args: &Args) -> Result<String, String> {
    let kernel = args.kernel()?;
    let n = args.num("--n", 0)?;
    if n < 3 {
        return Err("predict requires --n >= 3".into());
    }
    let nk = args.num("--nk", 30)?;
    let cache = args.cache_spec()?;
    let line = args.num("--line", 32)? / 8;
    let spec = match kernel {
        Kernel::Jacobi => SweepSpec::jacobi3d(),
        Kernel::RedBlack => SweepSpec::redblack_naive(),
        Kernel::Resid => SweepSpec::resid(),
    };
    let pr = match args.pair("--tile")? {
        None => predict_untiled(cache, line, &spec, n, nk, n, n),
        Some((ti, tj)) => predict_tiled(cache, line, &spec, n, nk, ti, tj),
    };
    Ok(format!(
        "analytic prediction for {} {n}x{n}x{nk} (conflict-free {}-double cache):\n\
         {:.0} misses / {:.0} accesses = {:.2}% miss rate\n",
        kernel.name(),
        cache.elements,
        pr.misses,
        pr.accesses,
        pr.miss_rate_pct,
    ))
}

/// `analyze`: the legality analyzer. For each requested transform, plans
/// it (which decides whether the executed schedule is tiled), certifies
/// the schedule against the kernel's dependence set, and prints the full
/// certificate: iteration-space dimensions, dependences, schedule steps,
/// verdict. Any illegal schedule turns the whole invocation into an `Err`,
/// so the process exits non-zero — the CI gate relies on this.
fn cmd_analyze(args: &Args) -> Result<String, String> {
    let kernel = args.kernel()?;
    let n = args.num("--n", 200)?;
    if n < 3 {
        return Err("analyze requires --n >= 3".into());
    }
    let cache = args.cache_spec()?;
    let skewed = !args.flag("--no-skew");
    let discipline = kernel.discipline();
    let transforms: Vec<Transform> = match args.get("--transform") {
        None => Transform::ALL.to_vec(),
        Some(t) if t.eq_ignore_ascii_case("all") => Transform::ALL.to_vec(),
        Some(_) => vec![args.transform()?],
    };
    let mut out = format!(
        "legality analysis: {} (discipline {:?}), {n}x{n} arrays, cache {} doubles\n",
        kernel.name(),
        discipline,
        cache.elements
    );
    let mut illegal = Vec::new();
    for t in transforms {
        let p = plan(t, cache, n, n, &kernel.shape());
        let cert = certificate_for(&discipline, p.tile.is_some(), skewed);
        let _ = writeln!(
            out,
            "\n== {} / {} ({}) ==",
            kernel.name(),
            t.name(),
            p.tile
                .map_or("untiled".into(), |(a, b)| format!("tile {a}x{b}")),
        );
        out.push_str(&cert.report());
        if !cert.is_legal() {
            illegal.push(t.name());
        }
    }
    if illegal.is_empty() {
        let _ = writeln!(out, "\nall analyzed schedules are legal");
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "\nILLEGAL schedules for: {} — refusing to certify",
            illegal.join(", ")
        );
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, String> {
        let raw: Vec<String> = line.split_whitespace().map(ToString::to_string).collect();
        run(&Args::parse(&raw)?)
    }

    #[test]
    fn plan_shows_all_transforms() {
        let out = run_line("plan --stencil jacobi3d --dims 341x341").unwrap();
        for name in ["Orig", "Tile", "Euc3D", "GcdPad", "Pad", "GcdPadNT"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(
            out.contains("110x4"),
            "Euc3D's pathological tile should appear:\n{out}"
        );
    }

    #[test]
    fn tiles_reproduces_table1_values() {
        let out = run_line("tiles --di 200 --dj 200").unwrap();
        assert!(out.contains("2048"));
        // The (TK=3, TJ=15, TI=24) row.
        assert!(out.lines().any(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            f == ["3", "15", "24"]
        }));
    }

    #[test]
    fn advise_matches_the_paper_boundaries() {
        let out = run_line("advise --stencil jacobi3d --n 33").unwrap();
        assert!(out.contains("up to plane extent 32"));
        assert!(out.contains("TileInnerTwo"));
        let out2 = run_line("advise --stencil jacobi2d --n 500").unwrap();
        assert!(out2.contains("NotNeeded"));
    }

    #[test]
    fn simulate_reports_rates() {
        let out = run_line("simulate --kernel jacobi --n 64 --nk 8 --transform gcdpad").unwrap();
        assert!(out.contains("L1 miss rate"));
        assert!(out.contains("GcdPad"));
    }

    #[test]
    fn simulate_all_is_jobs_invariant() {
        let seq = run_line("simulate --kernel jacobi --n 48 --nk 6 --transform all --jobs 1");
        let par = run_line("simulate --kernel jacobi --n 48 --nk 6 --transform all --jobs 4");
        let strip = |s: &str| {
            // Drop the header line (worker count differs by construction).
            s.lines().skip(1).collect::<Vec<_>>().join("\n")
        };
        let (seq, par) = (seq.unwrap(), par.unwrap());
        assert_eq!(strip(&seq), strip(&par));
        for name in ["Orig", "Tile", "Euc3D", "GcdPad", "Pad", "GcdPadNT"] {
            assert!(seq.contains(name), "missing {name} in:\n{seq}");
        }
    }

    #[test]
    fn predict_untiled_and_tiled() {
        let out = run_line("predict --kernel jacobi --n 280 --nk 30").unwrap();
        assert!(out.contains("25.00%"), "{out}");
        let out = run_line("predict --kernel jacobi --n 280 --nk 30 --tile 30x14").unwrap();
        assert!(out.contains("%"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(run_line("plan").unwrap_err().contains("--dims"));
        let unknown = run_line("bogus").unwrap_err();
        assert!(unknown.contains("unknown command"));
        assert!(unknown.contains("analyze"), "usage must list analyze");
        assert!(run_line("plan --dims nope --stencil jacobi3d")
            .unwrap_err()
            .contains("AxB"));
        assert!(run_line("simulate --kernel martian --n 50")
            .unwrap_err()
            .contains("unknown kernel"));
        assert!(run_line("analyze --kernel martian")
            .unwrap_err()
            .contains("unknown kernel"));
    }

    #[test]
    fn usage_and_dispatch_cannot_drift() {
        // Every dispatched command appears in usage(), and every COMMANDS
        // entry actually dispatches (no "unknown command" error).
        let u = usage();
        for cmd in COMMANDS {
            assert!(u.contains(cmd), "usage() is missing '{cmd}'");
            let raw = vec![cmd.to_string()];
            let res = run(&Args::parse(&raw).unwrap());
            if let Err(e) = res {
                assert!(
                    !e.contains("unknown command"),
                    "'{cmd}' is listed in COMMANDS but not dispatched: {e}"
                );
            }
        }
    }

    #[test]
    fn analyze_certifies_every_kernel_transform_pair() {
        for kernel in ["jacobi", "redblack", "resid"] {
            let out = run_line(&format!("analyze --kernel {kernel} --transform all"))
                .unwrap_or_else(|e| panic!("{kernel}: {e}"));
            assert!(out.contains("all analyzed schedules are legal"), "{out}");
            for name in ["Orig", "Tile", "Euc3D", "GcdPad", "Pad", "GcdPadNT"] {
                assert!(out.contains(name), "missing {name} in:\n{out}");
            }
        }
    }

    #[test]
    fn analyze_rejects_unskewed_fused_redblack_with_witness() {
        let err = run_line("analyze --kernel redblack --transform gcdpad --no-skew").unwrap_err();
        assert!(err.contains("ILLEGAL"), "{err}");
        // The paper's plane-spanning flow dependence is the witness.
        assert!(err.contains("[1, 1, -1, 0]"), "witness missing:\n{err}");
        assert!(err.contains("refusing to certify"), "{err}");
        // Untiled transforms stay legal even without the skew.
        let ok = run_line("analyze --kernel redblack --transform orig --no-skew").unwrap();
        assert!(ok.contains("legal"), "{ok}");
    }

    #[test]
    fn analyze_shows_dependences_and_schedule() {
        let out = run_line("analyze --kernel redblack --transform gcdpad").unwrap();
        assert!(out.contains("KK"), "fused dims in:\n{out}");
        assert!(out.contains("flow"), "{out}");
        assert!(out.contains("anti"), "{out}");
        assert!(out.contains("skew"), "schedule steps in:\n{out}");
        assert!(out.contains("LEGAL"), "{out}");
    }
}
