//! Golden tests for the machine-readable surfaces:
//!
//! * the JSONL trace schema is stable across `--jobs` values (field names,
//!   field types, the set of span names, and every deterministic counter
//!   are identical for 1 worker and N workers — only wall-clock gauges and
//!   per-worker task splits may differ), and
//! * the `--format json` output shapes are pinned by field name.
//!
//! The observability recorder is process-global, so every test that runs
//! `profile` in-process serialises on [`obs_lock`].

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use tiling3d_cli::run_argv;
use tiling3d_obs::json::{self, Json};
use tiling3d_obs::validate::{check_trace_str, parse_schema, TraceReport};
use tiling3d_obs::GOLDEN_SCHEMA;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run(args: &[&str]) -> Result<String, String> {
    let raw: Vec<String> = args.iter().map(ToString::to_string).collect();
    run_argv(&raw)
}

/// Runs `profile` with a JSONL trace file and returns (stdout rendering,
/// trace text, validation report).
fn profile_trace(jobs: usize) -> (String, String, TraceReport) {
    let path =
        std::env::temp_dir().join(format!("t3d-golden-{}-j{jobs}.jsonl", std::process::id()));
    let out = run(&[
        "profile",
        "--kernel",
        "jacobi",
        "--n",
        "48",
        "--nk",
        "6",
        "--jobs",
        &jobs.to_string(),
        "--trace-out",
        path.to_str().unwrap(),
    ])
    .expect("profile succeeds");
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let golden = parse_schema(GOLDEN_SCHEMA).expect("golden schema parses");
    let report = check_trace_str(&trace, &golden);
    (out, trace, report)
}

/// Deterministic counters from the trace's shutdown `metric` events
/// (gauges are wall-clock and excluded by design).
fn counters(trace: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in trace.lines().filter(|l| !l.trim().is_empty()) {
        let v = json::parse(line).expect("trace line parses");
        if v.get("ev").and_then(Json::as_str) == Some("metric")
            && v.get("kind").and_then(Json::as_str) == Some("counter")
        {
            out.insert(
                v.get("name").and_then(Json::as_str).unwrap().to_string(),
                v.get("value").and_then(Json::as_f64).unwrap(),
            );
        }
    }
    out
}

#[test]
fn profile_trace_is_valid_and_jobs_invariant() {
    let _g = obs_lock();
    let (out1, trace1, report1) = profile_trace(1);
    let (out4, trace4, report4) = profile_trace(4);

    // Both traces parse, balance their spans, and match the golden schema.
    assert!(report1.is_ok(), "jobs=1: {}", report1.summary());
    assert!(report4.is_ok(), "jobs=4: {}", report4.summary());

    // Field names and types are identical across worker counts.
    assert_eq!(report1.schema, report4.schema, "schema drift across --jobs");

    // The *set* of span names is jobs-invariant (workers are all named
    // "worker", never worker-N).
    assert_eq!(report1.span_names, report4.span_names);
    for name in [
        "pool",
        "worker",
        "sweep:JACOBI",
        "plan:GcdPad",
        "compute:JACOBI:row",
        "compute:JACOBI:lane",
    ] {
        assert!(
            report1.span_names.contains(name),
            "missing span '{name}' in {:?}",
            report1.span_names
        );
    }
    assert!(
        report1
            .span_names
            .iter()
            .any(|n| n.starts_with("simulate:JACOBI:")),
        "{:?}",
        report1.span_names
    );

    // Deterministic counters are bit-identical; the simulation itself is
    // jobs-invariant, so the folded cache statistics must be too.
    let (c1, c4) = (counters(&trace1), counters(&trace4));
    assert!(!c1.is_empty(), "no counter metrics in trace");
    assert_eq!(c1, c4, "counter snapshot differs across --jobs");
    for key in ["plan.calls", "cachesim.l1.accesses", "sim.accesses"] {
        assert!(c1.contains_key(key), "missing counter {key} in {c1:?}");
    }

    // The human rendering shows the tree with per-phase percentages and
    // per-worker spans under the pool.
    for out in [&out1, &out4] {
        assert!(out.contains("span tree"), "{out}");
        assert!(out.contains('%'), "{out}");
        assert!(out.contains("worker"), "{out}");
        assert!(out.contains("metrics:"), "{out}");
    }
}

#[test]
fn profile_steps_emits_the_timetile_span_tree() {
    let _g = obs_lock();
    let path = std::env::temp_dir().join(format!("t3d-timetile-{}.jsonl", std::process::id()));
    // --jobs 2 forces the wavefront-parallel path; the sequential path
    // runs time blocks inline and never opens a "wavefront" span.
    let out = run(&[
        "profile",
        "--kernel",
        "jacobi",
        "--n",
        "16",
        "--nk",
        "8",
        "--steps",
        "4",
        "--jobs",
        "2",
        "--trace-out",
        path.to_str().unwrap(),
    ])
    .expect("profile --steps succeeds");
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();

    for name in ["timetile:jacobi", "wavefront", "timeblock"] {
        assert!(out.contains(name), "missing span '{name}' in:\n{out}");
    }
    let golden = parse_schema(GOLDEN_SCHEMA).expect("golden schema parses");
    let report = check_trace_str(&trace, &golden);
    assert!(report.is_ok(), "{}", report.summary());
    // The wavefront spans nest under the temporal root, and the engine
    // records its configured step count.
    for name in ["timetile:jacobi", "wavefront", "timeblock"] {
        assert!(report.span_names.contains(name), "{:?}", report.span_names);
    }
    // The engine annotates the root span with its configured step count.
    assert!(out.contains("steps=4"), "{out}");
}

#[test]
fn trace_check_accepts_a_fresh_profile_trace() {
    let _g = obs_lock();
    let path = std::env::temp_dir().join(format!("t3d-check-{}.jsonl", std::process::id()));
    run(&[
        "profile",
        "--kernel",
        "jacobi",
        "--n",
        "32",
        "--nk",
        "4",
        "--jobs",
        "2",
        "--trace-out",
        path.to_str().unwrap(),
    ])
    .expect("profile succeeds");
    let ok = run(&["trace-check", path.to_str().unwrap()]).expect("trace validates");
    assert!(ok.contains("span_open"), "{ok}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn plan_json_shape_is_pinned() {
    let out = run(&["plan", "--dims", "200x200", "--format", "json"]).unwrap();
    let doc = json::parse(&out).unwrap();
    let keys: Vec<&str> = match &doc {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("expected object, got {other:?}"),
    };
    assert_eq!(
        keys,
        ["ev", "stencil", "di", "dj", "cache_elements", "plans"]
    );
    let Some(Json::Arr(plans)) = doc.get("plans") else {
        panic!("plans must be an array");
    };
    for p in plans {
        let keys: Vec<&str> = match p {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(
            keys,
            ["transform", "tile", "padded_di", "padded_dj", "cost"]
        );
    }
}

/// One schema, two transports: every `--format json` payload the CLI can
/// emit must validate against the same golden wire schema that governs the
/// `tiling3d serve` protocol (`crates/core/api.schema.golden`).
#[test]
fn cli_json_outputs_match_the_api_golden_schema() {
    let outputs = [
        run(&["plan", "--dims", "96x96", "--format", "json"]).unwrap(),
        run(&[
            "plan", "--dims", "96x96", "--steps", "4", "--format", "json",
        ])
        .unwrap(),
        run(&[
            "advise",
            "--stencil",
            "jacobi3d",
            "--n",
            "300",
            "--format",
            "json",
        ])
        .unwrap(),
        run(&[
            "advise",
            "--stencil",
            "jacobi2d",
            "--n",
            "100",
            "--format",
            "json",
        ])
        .unwrap(),
        run(&["analyze", "--kernel", "jacobi", "--format", "json"]).unwrap(),
        run(&[
            "analyze",
            "--kernel",
            "jacobi",
            "--temporal",
            "--format",
            "json",
        ])
        .unwrap(),
        run(&[
            "analyze",
            "--kernel",
            "jacobi",
            "--locality",
            "--n",
            "64",
            "--nk",
            "8",
            "--format",
            "json",
        ])
        .unwrap(),
    ];
    // Each output is one newline-terminated JSON object, so the
    // concatenation is a valid JSONL trace for the schema engine.
    let trace: String = outputs.concat();
    let golden = parse_schema(tiling3d_core::api::GOLDEN_SCHEMA).expect("api golden schema parses");
    let report = check_trace_str(&trace, &golden);
    assert!(report.is_ok(), "{}", report.summary());
    for kind in [
        "plan_response",
        "advise_response",
        "legality_response",
        "temporal_legality_response",
        "locality_response",
    ] {
        assert!(
            report.events_by_kind.contains_key(kind),
            "missing payload kind {kind}: {:?}",
            report.events_by_kind
        );
    }
}

#[test]
fn tiles_and_advise_json_shapes_are_pinned() {
    let out = run(&["tiles", "--format", "json"]).unwrap();
    let doc = json::parse(&out).unwrap();
    for key in ["di", "dj", "cache_elements", "tiles"] {
        assert!(doc.get(key).is_some(), "tiles json missing {key}: {out}");
    }
    let out = run(&[
        "advise",
        "--stencil",
        "jacobi3d",
        "--n",
        "300",
        "--format",
        "json",
    ])
    .unwrap();
    let doc = json::parse(&out).unwrap();
    for key in [
        "stencil",
        "n",
        "reuse_bound",
        "verdict",
        "reuse_distance_elements",
    ] {
        assert!(doc.get(key).is_some(), "advise json missing {key}: {out}");
    }
    let out = run(&["analyze", "--kernel", "jacobi", "--format", "json"]).unwrap();
    let doc = json::parse(&out).unwrap();
    assert!(
        matches!(doc.get("all_legal"), Some(Json::Bool(true))),
        "{out}"
    );
    let Some(Json::Arr(schedules)) = doc.get("schedules") else {
        panic!("schedules must be an array: {out}");
    };
    assert_eq!(schedules.len(), 6);
    for s in schedules {
        for key in ["transform", "tile", "skewed", "legal"] {
            assert!(s.get(key).is_some(), "schedule missing {key}: {out}");
        }
    }
}
