//! Empirical tile autotuning vs the paper's analytic selection.
//!
//! Exhaustively simulates a grid of tile sizes for one problem and ranks
//! them by L1 miss rate, then shows where the analytic choices (Euc3D /
//! GcdPad / Pad — microseconds of compile time) land relative to the
//! empirical optimum (minutes of search). The paper's thesis is that the
//! cost model + conflict analysis gets within a hair of exhaustive search;
//! this example lets you check that on any size.
//!
//! ```text
//! cargo run --release --example autotune [-- N]
//! ```

use tiling3d::cachesim::Hierarchy;
use tiling3d::core::{plan, CacheSpec, Transform};
use tiling3d::stencil::kernels::Kernel;

fn miss_rate(
    kernel: Kernel,
    n: usize,
    nk: usize,
    di: usize,
    dj: usize,
    tile: Option<(usize, usize)>,
) -> f64 {
    let mut h = Hierarchy::ultrasparc2();
    kernel.trace(n, nk, di, dj, tile, &mut h);
    h.l1_miss_rate_pct()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(341);
    let nk = 30usize;
    let kernel = Kernel::Jacobi;
    println!(
        "autotuning {} at {n}x{n}x{nk} (unpadded dims, 16K L1)\n",
        kernel.name()
    );

    // Exhaustive-ish sweep over tile sizes (unpadded array).
    let candidates: Vec<usize> = vec![1, 2, 4, 6, 8, 12, 16, 22, 24, 30, 32, 48, 64, 96, 128];
    let mut best = (f64::INFINITY, (0usize, 0usize));
    let mut evaluated = 0usize;
    for &ti in &candidates {
        for &tj in &candidates {
            let r = miss_rate(kernel, n, nk, n, n, Some((ti, tj)));
            evaluated += 1;
            if r < best.0 {
                best = (r, (ti, tj));
            }
        }
    }
    println!(
        "exhaustive search over {evaluated} tiles (no padding): best {:.2}% at {:?}",
        best.0, best.1
    );

    println!("\nanalytic selections:");
    for t in [Transform::Euc3D, Transform::GcdPad, Transform::Pad] {
        let p = plan(t, CacheSpec::ELEMENTS_16K_DOUBLES, n, n, &kernel.shape());
        let r = miss_rate(kernel, n, nk, p.padded_di, p.padded_dj, p.tile);
        println!(
            "  {:<8} tile {:?} pads {}x{}: {:.2}%",
            t.name(),
            p.tile.unwrap(),
            p.padded_di - n,
            p.padded_dj - n,
            r
        );
    }
    let orig = miss_rate(kernel, n, nk, n, n, None);
    println!("  {:<8} {:.2}%", "Orig", orig);
    println!(
        "\nthe padded analytic plans should match or beat the exhaustive unpadded\n\
         search — conflicts that no unpadded tile can avoid are exactly what\n\
         padding eliminates (Section 3.4)."
    );
}
