//! Heat diffusion in a 3D slab — the domain problem the paper's intro
//! motivates: an iterative PDE solver repeatedly applying a stencil.
//!
//! Solves `du/dt = alpha * laplacian(u)` with explicit Euler time stepping
//! on an `N x N x NK` grid (fixed-temperature boundaries), comparing the
//! original and the `GcdPad` tiled+padded schedules: same physics, same
//! bits, different cache behaviour. This is the "realistic stencil code"
//! pattern of Fig 5 — two loop nests per time step (update + copy-back),
//! which is why time-skewing does not apply but the paper's intra-sweep
//! tiling does.
//!
//! ```text
//! cargo run --release --example heat_diffusion [-- N NK STEPS]
//! ```

use std::time::Instant;

use tiling3d::core::{plan, CacheSpec, Transform};
use tiling3d::grid::Array3;
use tiling3d::loopnest::{for_each, for_each_tiled, IterSpace, StencilShape, TileDims};

/// One explicit diffusion step: `next = u + r * (6-point laplacian of u)`.
fn step(next: &mut Array3<f64>, u: &Array3<f64>, r: f64, tile: Option<TileDims>) {
    let (di, ps) = (u.di(), u.plane_stride());
    let space = IterSpace::interior(u.ni(), u.nj(), u.nk());
    let uv = u.as_slice();
    let nv = next.as_mut_slice();
    let body = |i: usize, j: usize, k: usize| {
        let idx = i + j * di + k * ps;
        nv[idx] = uv[idx]
            + r * (uv[idx - 1]
                + uv[idx + 1]
                + uv[idx - di]
                + uv[idx + di]
                + uv[idx - ps]
                + uv[idx + ps]
                - 6.0 * uv[idx]);
    };
    match tile {
        None => for_each(space, body),
        Some(t) => for_each_tiled(space, t, body),
    }
}

fn simulate(
    n: usize,
    nk: usize,
    steps: usize,
    di: usize,
    dj: usize,
    tile: Option<TileDims>,
) -> (Array3<f64>, f64) {
    // Hot plate at k = 0, cold elsewhere.
    let mut u = Array3::with_padding(n, n, nk, di, dj);
    u.fill_with(|_, _, k| if k == 0 { 100.0 } else { 0.0 });
    let mut next = u.clone();
    let t0 = Instant::now();
    for _ in 0..steps {
        step(&mut next, &u, 0.1, tile);
        std::mem::swap(&mut u, &mut next);
    }
    (u, t0.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(300);
    let nk: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);

    println!("3D heat diffusion, {n}x{n}x{nk} slab, {steps} explicit steps");

    let shape = StencilShape::jacobi3d();
    let p = plan(
        Transform::GcdPad,
        CacheSpec::ELEMENTS_16K_DOUBLES,
        n,
        n,
        &shape,
    );
    let tile = p.tile.map(|(ti, tj)| TileDims::new(ti, tj));
    println!(
        "GcdPad plan: tile {:?}, padded dims {}x{}",
        p.tile, p.padded_di, p.padded_dj
    );

    let (u_orig, t_orig) = simulate(n, nk, steps, n, n, None);
    let (u_tiled, t_tiled) = simulate(n, nk, steps, p.padded_di, p.padded_dj, tile);

    assert!(
        u_orig.logical_eq(&u_tiled),
        "physics must not depend on the schedule"
    );
    // Heat must have flowed into the slab: the first interior plane warmed up.
    let probe = u_orig.get(n / 2, n / 2, 1);
    assert!(probe > 0.0 && probe < 100.0);
    println!("temperature at centre of first interior plane: {probe:.3}");
    println!("orig {t_orig:.3}s vs tiled+padded {t_tiled:.3}s (identical results)");
    println!("(wall-clock parity on modern hosts is expected — see EXPERIMENTS.md;");
    println!(" the cache-level effect is what `fig_miss`/`quickstart` demonstrate)");
}
