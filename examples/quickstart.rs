//! Quickstart: plan a tiling + padding transformation for a 3D stencil and
//! verify (a) the result is identical and (b) simulated cache misses drop.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tiling3d::cachesim::Hierarchy;
use tiling3d::core::{plan, CacheSpec, Transform};
use tiling3d::grid::{fill_random, Array3};
use tiling3d::loopnest::TileDims;
use tiling3d::stencil::jacobi3d;

fn main() {
    // Problem: 3D Jacobi on a 300 x 300 x 30 grid — large enough that two
    // array planes (300^2 x 2 doubles = 1.4 MB) overwhelm a 16KB L1, so
    // reuse across the outer K loop is lost without tiling.
    let (n, nk) = (300usize, 30usize);
    let shape = tiling3d::loopnest::StencilShape::jacobi3d();

    // 1. Ask the paper's `Pad` algorithm for a plan against a 16KB
    //    direct-mapped L1 (2048 doubles).
    let p = plan(
        Transform::Pad,
        CacheSpec::ELEMENTS_16K_DOUBLES,
        n,
        n,
        &shape,
    );
    let (ti, tj) = p.tile.expect("Pad always tiles");
    println!(
        "plan: tile ({ti}, {tj}), array dims {}x{} (padded from {n}x{n})",
        p.padded_di, p.padded_dj
    );

    // 2. Run the kernel both ways on identical data.
    let mut b = Array3::with_padding(n, n, nk, p.padded_di, p.padded_dj);
    fill_random(&mut b, 42);
    let mut a_orig = b.clone();
    let mut a_tiled = b.clone();
    jacobi3d::sweep(&mut a_orig, &b, 1.0 / 6.0);
    jacobi3d::sweep_tiled(&mut a_tiled, &b, 1.0 / 6.0, TileDims::new(ti, tj));
    assert!(a_orig.logical_eq(&a_tiled));
    println!("tiled and original sweeps agree bitwise");

    // 3. Compare simulated miss rates on the paper's UltraSparc2 caches.
    let mut h_orig = Hierarchy::ultrasparc2();
    jacobi3d::trace(n, n, nk, n, n, None, &mut h_orig);
    let mut h_tiled = Hierarchy::ultrasparc2();
    jacobi3d::trace(
        n,
        n,
        nk,
        p.padded_di,
        p.padded_dj,
        Some(TileDims::new(ti, tj)),
        &mut h_tiled,
    );
    println!(
        "L1 miss rate: {:.1}% original  ->  {:.1}% tiled+padded",
        h_orig.l1_miss_rate_pct(),
        h_tiled.l1_miss_rate_pct()
    );
    assert!(h_tiled.l1_miss_rate_pct() < h_orig.l1_miss_rate_pct());
}
