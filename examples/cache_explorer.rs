//! Interactive-style cache exploration: how one kernel's miss rate responds
//! to each transformation on a cache geometry of your choosing — a small
//! "what would the paper's compiler do on *my* machine?" tool.
//!
//! ```text
//! cargo run --release --example cache_explorer -- [jacobi|redblack|resid] \
//!     [--n 341] [--nk 30] [--l1-kb 16] [--line 32] [--ways 1]
//! ```

use tiling3d::cachesim::{CacheConfig, Hierarchy, ReplacementPolicy, WritePolicy};
use tiling3d::core::{plan, CacheSpec, Transform};
use tiling3d::stencil::kernels::Kernel;

fn flag(args: &[String], key: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel = match args.first().map(String::as_str) {
        Some("redblack") => Kernel::RedBlack,
        Some("resid") => Kernel::Resid,
        _ => Kernel::Jacobi,
    };
    let n = flag(&args, "--n", 341);
    let nk = flag(&args, "--nk", 30);
    let l1 = CacheConfig {
        size_bytes: flag(&args, "--l1-kb", 16) * 1024,
        line_bytes: flag(&args, "--line", 32),
        ways: flag(&args, "--ways", 1),
        write_policy: WritePolicy::WriteAround,
        replacement: ReplacementPolicy::Lru,
    };
    l1.validate().expect("invalid L1 geometry");
    let spec = CacheSpec::from_bytes(l1.size_bytes);

    println!(
        "{} on {n}x{n}x{nk}; L1 = {}KB, {}B lines, {}-way ({} doubles)",
        kernel.name(),
        l1.size_bytes / 1024,
        l1.line_bytes,
        l1.ways,
        spec.elements
    );
    println!(
        "\n{:<10}{:>12}{:>14}{:>10}{:>10}{:>12}",
        "transform", "tile", "padded dims", "L1 miss%", "L2 miss%", "mem overhead"
    );
    for t in Transform::ALL {
        let p = plan(t, spec, n, n, &kernel.shape());
        let mut h = Hierarchy::new(l1, CacheConfig::ULTRASPARC2_L2);
        kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut h);
        let overhead = tiling3d::core::memory_overhead_pct(n, n, nk, p.padded_di, p.padded_dj);
        println!(
            "{:<10}{:>12}{:>14}{:>10.2}{:>10.2}{:>11.1}%",
            t.name(),
            p.tile.map_or("-".into(), |(a, b)| format!("{a}x{b}")),
            format!("{}x{}", p.padded_di, p.padded_dj),
            h.l1_miss_rate_pct(),
            h.l2_miss_rate_pct(),
            overhead
        );
    }
    println!("\ntry pathological sizes (--n 256, --n 320, --n 341) or higher --ways to");
    println!("watch conflict misses appear and disappear.");
}
