//! Solve a periodic 3D Poisson-type problem with the full MGRID-style
//! V-cycle solver, with the paper's Section 4.6 transformation applied to
//! the finest-level RESID kernel.
//!
//! ```text
//! cargo run --release --example multigrid_poisson [-- LEVELS ITERS]
//! ```

use tiling3d::core::{gcd_pad, CacheSpec};
use tiling3d::loopnest::{StencilShape, TileDims};
use tiling3d::multigrid::{MgConfig, MgSolver};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let levels: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(5);
    let iters: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let m = 1usize << levels;

    println!("multigrid Poisson solve: finest grid {m}^3 ({levels} levels), {iters} V-cycles");

    // Transform the finest level like the paper: GcdPad tile + padding.
    let g = gcd_pad(
        CacheSpec::ELEMENTS_16K_DOUBLES,
        m + 2,
        m + 2,
        &StencilShape::resid27(),
    );
    let cfg = MgConfig {
        pad_finest: Some((g.di_p, g.dj_p)),
        tile_finest: Some(TileDims::new(g.iter_tile.0, g.iter_tile.1)),
        ..MgConfig::mgrid(levels)
    };
    println!(
        "finest-level RESID: tile ({}, {}), arrays padded to {}x{}",
        g.iter_tile.0, g.iter_tile.1, g.di_p, g.dj_p
    );

    let mut solver = MgSolver::new(cfg);
    let mf = m as f64;
    solver.set_rhs(|i, j, k| {
        let (x, y, z) = (i as f64 / mf, j as f64 / mf, k as f64 / mf);
        (2.0 * std::f64::consts::PI * x).sin()
            * (4.0 * std::f64::consts::PI * y).sin()
            * (2.0 * std::f64::consts::PI * z).cos()
    });

    println!("\n{:>6} {:>14}", "cycle", "residual L2");
    let norms = solver.solve(iters);
    for (i, n) in norms.iter().enumerate() {
        println!("{i:>6} {n:>14.6e}");
    }
    let final_norm = solver.residual_norm();
    println!("{iters:>6} {final_norm:>14.6e}");
    assert!(
        final_norm < norms[0] * 1e-3,
        "V-cycles should reduce the residual by orders of magnitude"
    );

    println!("\nroutine breakdown:");
    println!(
        "  resid {:?} ({:.0}% of routine time, {} calls)   psinv {:?}   rprj3 {:?}   interp {:?}",
        solver.stats.resid,
        100.0 * solver.stats.resid_fraction(),
        solver.stats.resid_calls,
        solver.stats.psinv,
        solver.stats.rprj3,
        solver.stats.interp
    );
}
