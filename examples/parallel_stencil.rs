//! Tiling composed with thread parallelism: run the tiled Jacobi and RESID
//! sweeps across K-slabs on every core and verify the results are bitwise
//! identical to the sequential schedules.
//!
//! ```text
//! cargo run --release --example parallel_stencil [-- N NK]
//! ```

use std::time::Instant;

use tiling3d::core::{plan, CacheSpec, Transform};
use tiling3d::grid::{fill_random, Array3};
use tiling3d::loopnest::TileDims;
use tiling3d::stencil::resid::Coeffs;
use tiling3d::stencil::{jacobi3d, parallel, resid};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(256);
    let nk: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let p = plan(
        Transform::GcdPad,
        CacheSpec::ELEMENTS_16K_DOUBLES,
        n,
        n,
        &tiling3d::loopnest::StencilShape::jacobi3d(),
    );
    let tile = p.tile.map(|(ti, tj)| TileDims::new(ti, tj));
    println!("{n}x{n}x{nk} grids, {cores} core(s), tile {:?}", p.tile);

    // --- Jacobi ---
    let mut b = Array3::with_padding(n, n, nk, p.padded_di, p.padded_dj);
    fill_random(&mut b, 1);
    let mut seq = b.clone();
    jacobi3d::sweep_tiled(&mut seq, &b, 1.0 / 6.0, tile.unwrap());
    for threads in [1, 2, cores.max(2)] {
        let mut par = b.clone();
        let t0 = Instant::now();
        parallel::jacobi3d_sweep(&mut par, &b, 1.0 / 6.0, tile, threads);
        let dt = t0.elapsed();
        assert!(seq.logical_eq(&par));
        println!("  jacobi  {threads:>2} thread(s): {dt:?} (bitwise == sequential)");
    }

    // --- RESID ---
    let mut u = Array3::with_padding(n, n, nk, p.padded_di, p.padded_dj);
    let mut v = u.clone();
    fill_random(&mut u, 2);
    fill_random(&mut v, 3);
    let mut seq_r = u.clone();
    resid::sweep(&mut seq_r, &u, &v, &Coeffs::MGRID_A, tile);
    for threads in [1, cores.max(2)] {
        let mut par_r = u.clone();
        let t0 = Instant::now();
        parallel::resid_sweep(&mut par_r, &u, &v, &Coeffs::MGRID_A, tile, threads);
        let dt = t0.elapsed();
        assert!(seq_r.logical_eq(&par_r));
        println!("  resid   {threads:>2} thread(s): {dt:?} (bitwise == sequential)");
    }

    println!("K-slab decomposition keeps each thread's working set tile-shaped, so the");
    println!("paper's single-core cache analysis applies per thread unchanged.");
}
