//! Property-based tests (proptest) for the core invariants.

use proptest::prelude::*;

use tiling3d::cachesim::{Cache, CacheConfig, ReplacementPolicy, WritePolicy};
use tiling3d::core::nonconflict::{enumerate_depth, max_ti, verify_nonconflicting};
use tiling3d::core::{gcd_pad, pad, plan, CacheSpec, CostModel, Transform};
use tiling3d::grid::{fill_random, Array3};
use tiling3d::loopnest::{StencilShape, TileDims};
use tiling3d::stencil::{jacobi3d, redblack, resid};

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental enumeration agrees with brute force and with the
    /// occupancy oracle for arbitrary geometry.
    #[test]
    fn nonconflicting_enumeration_is_sound_and_maximal(
        cpow in 6u32..12, // cache 64..2048 elements
        di in 3usize..600,
        dj in 3usize..600,
        tk in 1usize..5,
    ) {
        let c = 1usize << cpow;
        let tiles = enumerate_depth(c, di, dj, tk);
        for t in &tiles {
            prop_assert_eq!(max_ti(c, di, dj, t.tj, tk), t.ti);
            prop_assert!(verify_nonconflicting(c, di, dj, t));
            let bigger = tiling3d::core::ArrayTile { ti: t.ti + 1, ..*t };
            prop_assert!(!verify_nonconflicting(c, di, dj, &bigger));
        }
        // Breakpoints strictly decrease in TI and increase in TJ.
        for w in tiles.windows(2) {
            prop_assert!(w[1].ti < w[0].ti);
            prop_assert!(w[1].tj > w[0].tj);
        }
    }

    /// GcdPad's promised invariants hold for arbitrary dimensions:
    /// gcd(DI_p, C) = TI, gcd(DJ_p, C) = TJ, pads bounded by 2T-1, and the
    /// resulting array tile never self-interferes.
    #[test]
    fn gcdpad_invariants(di in 8usize..2000, dj in 8usize..2000) {
        let cache = CacheSpec { elements: 2048 };
        let shape = StencilShape::jacobi3d();
        let g = gcd_pad(cache, di, dj, &shape);
        prop_assert_eq!(gcd(g.di_p, 2048), g.array_tile.ti);
        prop_assert_eq!(gcd(g.dj_p, 2048), g.array_tile.tj);
        prop_assert!(g.di_p >= di && g.di_p - di < 2 * g.array_tile.ti);
        prop_assert!(g.dj_p >= dj && g.dj_p - dj < 2 * g.array_tile.tj);
        prop_assert!(verify_nonconflicting(2048, g.di_p, g.dj_p, &g.array_tile));
    }

    /// Pad's contract: pads bounded by GcdPad's, cost no worse than
    /// GcdPad's, selected tile conflict-free under the selected pads.
    #[test]
    fn pad_contract(d in 100usize..420) {
        let cache = CacheSpec { elements: 2048 };
        let shape = StencilShape::jacobi3d();
        let g = gcd_pad(cache, d, d, &shape);
        let p = pad(cache, d, d, &shape);
        prop_assert!(p.di_p >= d && p.di_p <= g.di_p);
        prop_assert!(p.dj_p >= d && p.dj_p <= g.dj_p);
        let cost = CostModel::from_shape(&shape);
        let cost_star = cost.eval(g.iter_tile.0 as i64, g.iter_tile.1 as i64);
        prop_assert!(p.selection.cost <= cost_star + 1e-9);
        prop_assert!(verify_nonconflicting(
            2048,
            p.di_p,
            p.dj_p,
            &p.selection.array_tile
        ));
    }

    /// Tiled Jacobi equals untiled for arbitrary shapes, pads and tiles.
    #[test]
    fn jacobi_tiling_preserves_results(
        n in 4usize..24,
        nk in 3usize..12,
        pad_i in 0usize..7,
        pad_j in 0usize..7,
        ti in 1usize..30,
        tj in 1usize..30,
        seed in any::<u64>(),
    ) {
        let (di, dj) = (n + pad_i, n + pad_j);
        let mut b = Array3::with_padding(n, n, nk, di, dj);
        fill_random(&mut b, seed);
        let mut a1 = Array3::with_padding(n, n, nk, di, dj);
        let mut a2 = a1.clone();
        jacobi3d::sweep(&mut a1, &b, 1.0 / 6.0);
        jacobi3d::sweep_tiled(&mut a2, &b, 1.0 / 6.0, TileDims::new(ti, tj));
        prop_assert!(a1.logical_eq(&a2));
    }

    /// The skewed tiled red-black schedule equals the naive schedule for
    /// arbitrary sizes and tiles — the strongest correctness property in
    /// the workspace (ordering-sensitive in-place updates).
    #[test]
    fn redblack_tiling_preserves_results(
        n in 4usize..20,
        nk in 3usize..14,
        ti in 1usize..24,
        tj in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut a = Array3::new(n, n, nk);
        fill_random(&mut a, seed);
        let mut b = a.clone();
        redblack::sweep(&mut a, 0.4, 0.1, redblack::Schedule::Naive);
        redblack::sweep(&mut b, 0.4, 0.1, redblack::Schedule::Tiled(TileDims::new(ti, tj)));
        prop_assert!(a.logical_eq(&b));
    }

    /// Parallel K-slab sweeps equal sequential for arbitrary thread counts.
    #[test]
    fn parallel_equals_sequential(
        n in 5usize..20,
        nk in 3usize..16,
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let mut u = Array3::new(n, n, nk);
        let mut v = Array3::new(n, n, nk);
        fill_random(&mut u, seed);
        fill_random(&mut v, seed ^ 1);
        let mut seq = Array3::new(n, n, nk);
        resid::sweep(&mut seq, &u, &v, &resid::Coeffs::MGRID_A, None);
        let mut par = Array3::new(n, n, nk);
        tiling3d::stencil::parallel::resid_sweep(
            &mut par, &u, &v, &resid::Coeffs::MGRID_A, None, threads,
        );
        prop_assert!(seq.logical_eq(&par));
    }

    /// The set-associative cache against a trivially-correct reference
    /// model (vector of per-set LRU queues).
    #[test]
    fn cache_matches_reference_lru_model(
        ways_pow in 0u32..3,
        accesses in proptest::collection::vec((0u64..4096, any::<bool>()), 1..400),
    ) {
        let ways = 1usize << ways_pow;
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways,
            write_policy: WritePolicy::WriteAround,
            replacement: ReplacementPolicy::Lru,
        };
        let mut cache = Cache::new(cfg);
        // Reference: per-set Vec kept in LRU order (front = most recent).
        let sets = cfg.num_sets();
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
        for &(addr, is_write) in &accesses {
            let line = addr >> 6;
            let set = (line as usize) % sets;
            let q = &mut model[set];
            let hit = q.iter().position(|&t| t == line);
            let expect_miss = hit.is_none();
            match hit {
                Some(pos) => {
                    let t = q.remove(pos);
                    q.insert(0, t);
                }
                None if !is_write => {
                    q.insert(0, line);
                    q.truncate(ways);
                }
                None => {} // write-around: no allocate
            }
            let miss = cache.access(addr, is_write);
            prop_assert_eq!(miss, expect_miss, "addr {} write {}", addr, is_write);
        }
    }

    /// Cost model sanity: scaling both tile dims up never increases cost,
    /// and the square tile is optimal among equal-area tiles.
    #[test]
    fn cost_model_monotone_and_square_optimal(ti in 1i64..64, tj in 1i64..64) {
        let cost = CostModel::new(2, 2);
        prop_assert!(cost.eval(2 * ti, 2 * tj) <= cost.eval(ti, tj));
        let area = ti * tj;
        let sq = (area as f64).sqrt();
        let (a, b) = (sq.floor() as i64, sq.ceil() as i64);
        if a > 0 && a * b == area {
            prop_assert!(cost.eval(a, b) <= cost.eval(ti, tj) + 1e-12);
        }
    }

    /// Planning never panics and always yields legal plans for any size.
    #[test]
    fn planning_is_total(n in 3usize..700) {
        for t in Transform::ALL {
            let p = plan(t, CacheSpec::ELEMENTS_16K_DOUBLES, n, n, &StencilShape::resid27());
            prop_assert!(p.padded_di >= n && p.padded_dj >= n);
            if let Some((ti, tj)) = p.tile {
                prop_assert!(ti >= 1 && tj >= 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The 3C classes partition the real cache's misses for any trace.
    #[test]
    fn threec_classes_partition_misses(
        accesses in proptest::collection::vec((0u64..16384, any::<bool>()), 1..600),
        ways_pow in 0u32..2,
    ) {
        use tiling3d::cachesim::ThreeC;
        let cfg = CacheConfig {
            size_bytes: 2048,
            line_bytes: 32,
            ways: 1 << ways_pow,
            write_policy: WritePolicy::WriteAround,
            replacement: ReplacementPolicy::Lru,
        };
        let mut c = ThreeC::new(cfg);
        for &(a, w) in &accesses {
            if w {
                use tiling3d::cachesim::AccessSink;
                c.write(a);
            } else {
                use tiling3d::cachesim::AccessSink;
                c.read(a);
            }
        }
        prop_assert_eq!(c.cold + c.capacity + c.conflict, c.total_misses());
        prop_assert_eq!(c.accesses, accesses.len() as u64);
    }

    /// Euclid's 2D candidate tiles are always sound for arbitrary strides.
    #[test]
    fn euclid_2d_tiles_never_conflict(cpow in 5u32..12, di in 1usize..5000) {
        use tiling3d::core::nonconflict::{euclid_tiles_2d, verify_nonconflicting};
        use tiling3d::core::ArrayTile;
        let c = 1usize << cpow;
        for (ti, tj) in euclid_tiles_2d(c, di) {
            let tile = ArrayTile { ti, tj, tk: 1 };
            prop_assert!(verify_nonconflicting(c, di, di, &tile));
        }
    }

    /// Inter-variable staggering never shrinks separations below the
    /// target and keeps arrays disjoint, for arbitrary geometry.
    #[test]
    fn staggered_bases_are_sound(
        count in 1usize..6,
        array_kb in 1u64..512,
        cache_pow in 10u32..18,
    ) {
        use tiling3d::core::intervar::staggered_bases;
        let cache = 1u64 << cache_pow;
        let bytes = array_kb * 1024 + 8; // deliberately unaligned sizes
        let bases = staggered_bases(count, bytes, cache, 64);
        for w in bases.windows(2) {
            prop_assert!(w[1] >= w[0] + bytes, "arrays overlap");
        }
        for &b in &bases {
            prop_assert_eq!(b % 64, 0);
        }
    }

    /// The time-skewed schedule equals the naive one for arbitrary
    /// parameters (the strongest legality check for the skew).
    #[test]
    fn time_skewing_preserves_results(
        n in 4usize..16,
        steps in 0usize..7,
        st in 1usize..9,
        sj in 1usize..9,
        seed in any::<u64>(),
    ) {
        use tiling3d::grid::{fill_random2, Array2};
        use tiling3d::stencil::timeskew;
        let mut b0 = Array2::new(n, n);
        fill_random2(&mut b0, seed);
        let mut a = [b0.clone(), b0.clone()];
        let mut b = [b0.clone(), b0];
        timeskew::run_naive(&mut a, 0.25, steps);
        timeskew::run_time_skewed(&mut b, 0.25, steps, st, sj);
        prop_assert!(a[steps % 2].logical_eq(&b[steps % 2]));
    }

    /// The analytic predictor is internally consistent: bigger
    /// non-degenerate tiles never predict more misses.
    #[test]
    fn predictor_monotone_in_tile_area(ti in 2usize..64, tj in 2usize..64) {
        use tiling3d::core::predict::{predict_tiled, SweepSpec};
        let spec = SweepSpec::jacobi3d();
        let small = predict_tiled(
            tiling3d::core::CacheSpec::ELEMENTS_16K_DOUBLES, 4, &spec, 200, 30, ti, tj,
        );
        let big = predict_tiled(
            tiling3d::core::CacheSpec::ELEMENTS_16K_DOUBLES, 4, &spec, 200, 30, 2 * ti, 2 * tj,
        );
        prop_assert!(big.misses <= small.misses + 1e-9);
    }
}
