//! Cross-crate equivalence: every transformation of every kernel computes
//! bitwise-identical results to the untransformed original — the safety
//! property a compiler transformation must guarantee.

use tiling3d::core::{plan, CacheSpec, Transform};
use tiling3d::grid::Array3;
use tiling3d::stencil::kernels::{Kernel, KernelState};

fn output(s: &KernelState) -> Array3<f64> {
    match s {
        KernelState::Jacobi { a, .. } => a.clone(),
        KernelState::RedBlack { a } => a.clone(),
        KernelState::Resid { r, .. } => r.clone(),
    }
}

#[test]
fn every_transform_of_every_kernel_is_result_preserving() {
    let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
    for kernel in Kernel::ALL {
        for &(n, nk) in &[(24usize, 10usize), (37, 9), (50, 16)] {
            let reference = {
                let p = plan(Transform::Orig, cache, n, n, &kernel.shape());
                let mut st = kernel.make_state(n, nk, &p, 0xFEED);
                kernel.run(&mut st, p.tile);
                output(&st)
            };
            for t in Transform::ALL {
                let p = plan(t, cache, n, n, &kernel.shape());
                let mut st = kernel.make_state(n, nk, &p, 0xFEED);
                kernel.run(&mut st, p.tile);
                assert!(
                    reference.logical_eq(&output(&st)),
                    "{} under {:?} at {n}x{n}x{nk} diverged",
                    kernel.name(),
                    t
                );
            }
        }
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
    for kernel in Kernel::ALL {
        let p = plan(Transform::Pad, cache, 40, 40, &kernel.shape());
        let mut s1 = kernel.make_state(40, 12, &p, 3);
        let mut s2 = kernel.make_state(40, 12, &p, 3);
        kernel.run(&mut s1, p.tile);
        kernel.run(&mut s2, p.tile);
        assert!(output(&s1).logical_eq(&output(&s2)), "{}", kernel.name());
    }
}

#[test]
fn extreme_tiles_are_safe() {
    // Degenerate (1,1) tiles (the Euc3D fallback) and tiles larger than
    // the whole iteration space must both work on every kernel.
    for kernel in Kernel::ALL {
        let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
        let orig = plan(Transform::Orig, cache, 20, 20, &kernel.shape());
        let reference = {
            let mut st = kernel.make_state(20, 8, &orig, 11);
            kernel.run(&mut st, None);
            output(&st)
        };
        for tile in [(1usize, 1usize), (1, 19), (19, 1), (1000, 1000)] {
            let mut st = kernel.make_state(20, 8, &orig, 11);
            kernel.run(&mut st, Some(tile));
            assert!(
                reference.logical_eq(&output(&st)),
                "{} with tile {tile:?} diverged",
                kernel.name()
            );
        }
    }
}

#[test]
fn multigrid_transformed_solver_matches_baseline_exactly() {
    use tiling3d::loopnest::TileDims;
    use tiling3d::multigrid::{MgConfig, MgSolver};
    let mk = |pad: Option<(usize, usize)>, tile: Option<TileDims>| {
        let cfg = MgConfig {
            pad_finest: pad,
            tile_finest: tile,
            ..MgConfig::mgrid(4)
        };
        let mut s = MgSolver::new(cfg);
        s.set_rhs(|i, j, k| ((i * 31 + j * 17 + k * 7) % 13) as f64 - 6.0);
        s.solve(3);
        s
    };
    let base = mk(None, None);
    let transformed = mk(Some((25, 21)), Some(TileDims::new(6, 5)));
    let (a, b) = (base.solution(), transformed.solution());
    for k in 1..=16 {
        for j in 1..=16 {
            for i in 1..=16 {
                assert_eq!(
                    a.get(i, j, k).to_bits(),
                    b.get(i, j, k).to_bits(),
                    "solution diverged at ({i},{j},{k})"
                );
            }
        }
    }
}
