//! Integration tests pinning the paper's concrete numbers and qualitative
//! claims — the repository's "does it still reproduce the paper?" gate.

use tiling3d::cachesim::Hierarchy;
use tiling3d::core::nonconflict::enumerate_array_tiles;
use tiling3d::core::{euc3d, gcd_pad, memory_overhead_pct, plan, CacheSpec, Transform};
use tiling3d::loopnest::{reuse, StencilShape};
use tiling3d::stencil::kernels::Kernel;

const C16K: CacheSpec = CacheSpec::ELEMENTS_16K_DOUBLES;

#[test]
fn table1_all_entries_present() {
    let entries = [
        (1, 1, 2048),
        (1, 10, 200),
        (1, 41, 48),
        (1, 256, 8),
        (2, 1, 960),
        (2, 4, 200),
        (2, 5, 160),
        (2, 15, 40),
        (3, 5, 72),
        (3, 11, 40),
        (3, 15, 24),
        (4, 4, 72),
        (4, 15, 16),
        (4, 56, 8),
    ];
    let tiles = enumerate_array_tiles(2048, 200, 200, 4);
    for (tk, tj, ti) in entries {
        assert!(
            tiles.iter().any(|t| (t.tk, t.tj, t.ti) == (tk, tj, ti)),
            "missing Table 1 entry TK={tk} TJ={tj} TI={ti}"
        );
    }
}

#[test]
fn section_3_3_worked_example() {
    let sel = euc3d(C16K, 200, 200, &StencilShape::jacobi3d());
    assert_eq!(sel.iter_tile, (22, 13));
    assert_eq!(
        (sel.array_tile.tk, sel.array_tile.tj, sel.array_tile.ti),
        (3, 15, 24)
    );
}

#[test]
fn section_3_4_pathological_341() {
    let sel = euc3d(C16K, 341, 341, &StencilShape::jacobi3d());
    assert_eq!(sel.iter_tile, (110, 4));
}

#[test]
fn section_3_4_1_gcdpad_tile_choice() {
    let g = gcd_pad(C16K, 200, 200, &StencilShape::jacobi3d());
    assert_eq!(
        (g.array_tile.ti, g.array_tile.tj, g.array_tile.tk),
        (32, 16, 4)
    );
    // Pads bounded by 2T-1 = 63 / 31.
    assert!(g.di_p - 200 <= 63);
    assert!(g.dj_p - 200 <= 31);
}

#[test]
fn section_1_capacity_boundaries() {
    let j3 = StencilShape::jacobi3d();
    assert_eq!(reuse::max_plane_extent(2048, &j3), 32);
    assert_eq!(reuse::max_plane_extent(262_144, &j3), 362);
    assert_eq!(
        reuse::max_column_extent_2d(2048, &StencilShape::jacobi2d()),
        1024
    );
}

/// Table 3's qualitative content at a handful of sizes: every tiling
/// transformation beats Orig on average L1 miss rate; padding+tiling
/// (GcdPad/Pad) beats tiling alone (Tile/Euc3D); padding alone (GcdPadNT)
/// helps least among the five.
#[test]
fn table3_qualitative_ordering() {
    // K extent 30 as in the paper. (K matters beyond measurement time:
    // with consecutive allocation the *total array size mod cache size*
    // sets the cross-array base alignment, and GCD-padded plane strides
    // make that alignment pathological when K = 0 mod 4 — the
    // cross-interference effect of Section 3.5. K = 30 reproduces the
    // paper's setup.)
    let sizes = [200usize, 250, 300, 341, 400];
    for kernel in Kernel::ALL {
        let mut means = std::collections::HashMap::new();
        for t in Transform::ALL {
            let mut sum = 0.0;
            for &n in &sizes {
                let p = plan(t, C16K, n, n, &kernel.shape());
                let mut h = Hierarchy::ultrasparc2();
                kernel.trace(n, 30, p.padded_di, p.padded_dj, p.tile, &mut h);
                sum += h.l1_miss_rate_pct();
            }
            means.insert(t.name(), sum / sizes.len() as f64);
        }
        let m = |k: &str| means[k];
        assert!(
            m("GcdPad") < m("Orig") && m("Pad") < m("Orig"),
            "{}: padded tiling must beat Orig: {means:?}",
            kernel.name()
        );
        assert!(
            m("GcdPad") < m("Tile") && m("GcdPad") < m("Euc3D") + 1e-9,
            "{}: GcdPad must beat unpadded tiling on average: {means:?}",
            kernel.name()
        );
        assert!(
            m("GcdPadNT") >= m("GcdPad"),
            "{}: padding alone cannot beat padding+tiling: {means:?}",
            kernel.name()
        );
    }
}

/// Figures 14/16/18 stability claim: GcdPad and Pad miss rates are *flat*
/// across problem sizes (including the pathological ones), while Orig and
/// Euc3D spike.
#[test]
fn padded_transforms_are_stable_across_sizes() {
    let sizes = [200usize, 256, 320, 341, 384];
    let kernel = Kernel::Jacobi;
    let range_of = |t: Transform| {
        let rates: Vec<f64> = sizes
            .iter()
            .map(|&n| {
                let p = plan(t, C16K, n, n, &kernel.shape());
                let mut h = Hierarchy::ultrasparc2();
                kernel.trace(n, 16, p.padded_di, p.padded_dj, p.tile, &mut h);
                h.l1_miss_rate_pct()
            })
            .collect();
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0, f64::max);
        hi - lo
    };
    let stable = range_of(Transform::GcdPad).max(range_of(Transform::Pad));
    let unstable = range_of(Transform::Orig).max(range_of(Transform::Euc3D));
    assert!(
        stable < 4.0,
        "GcdPad/Pad should be flat; range {stable:.1} percentage points"
    );
    assert!(
        unstable > 10.0,
        "Orig/Euc3D should spike at pathological sizes; range {unstable:.1}"
    );
    assert!(stable < unstable / 2.0);
}

/// Fig 22: Pad's memory overhead never exceeds GcdPad's, and both shrink
/// as N grows on average.
#[test]
fn fig22_overhead_ordering() {
    let shape = StencilShape::jacobi3d();
    let mut gcd_total = 0.0;
    let mut pad_total = 0.0;
    for n in (200..=400).step_by(16) {
        let g = plan(Transform::GcdPad, C16K, n, n, &shape);
        let p = plan(Transform::Pad, C16K, n, n, &shape);
        let og = memory_overhead_pct(n, n, 30, g.padded_di, g.padded_dj);
        let op = memory_overhead_pct(n, n, 30, p.padded_di, p.padded_dj);
        assert!(op <= og + 1e-9, "N={n}: Pad {op:.2}% > GcdPad {og:.2}%");
        gcd_total += og;
        pad_total += op;
    }
    // Paper averages: 14.7% vs 4.7% — ours must preserve the big gap.
    assert!(
        pad_total < gcd_total / 2.0,
        "Pad should pad far less than GcdPad"
    );
}

/// Section 4.2: tiling targets L1 but L2 misses must not get *worse*
/// (the paper observes small L2 improvements as a side effect).
#[test]
fn l2_never_degrades_much_under_padded_tiling() {
    for kernel in Kernel::ALL {
        for &n in &[250usize, 341, 400] {
            let orig = plan(Transform::Orig, C16K, n, n, &kernel.shape());
            let tiled = plan(Transform::GcdPad, C16K, n, n, &kernel.shape());
            let rate = |p: &tiling3d::core::TransformPlan| {
                let mut h = Hierarchy::ultrasparc2();
                kernel.trace(n, 16, p.padded_di, p.padded_dj, p.tile, &mut h);
                h.l2_miss_rate_pct()
            };
            let (ro, rt) = (rate(&orig), rate(&tiled));
            assert!(
                rt <= ro + 0.5,
                "{} N={n}: L2 degraded {ro:.2}% -> {rt:.2}%",
                kernel.name()
            );
        }
    }
}

/// The paper's core mechanism, verified directly with a 3C (cold /
/// capacity / conflict) miss classification: the padded transforms
/// eliminate *conflict* misses almost entirely at a pathological size,
/// while the unpadded ones drown in them. Cold and capacity components
/// are untouched — padding fixes mapping, not footprint.
#[test]
fn padded_transforms_eliminate_conflict_misses() {
    use tiling3d::cachesim::ThreeC;
    let n = 320; // plane stride = 0 mod cache: worst case
    let kernel = Kernel::Jacobi;
    let conflict_pct = |t: Transform| {
        let p = plan(t, C16K, n, n, &kernel.shape());
        let mut c = ThreeC::ultrasparc2_l1();
        kernel.trace(n, 16, p.padded_di, p.padded_dj, p.tile, &mut c);
        c.conflict_rate_pct()
    };
    let orig = conflict_pct(Transform::Orig);
    let gcd = conflict_pct(Transform::GcdPad);
    let pad = conflict_pct(Transform::Pad);
    assert!(
        orig > 20.0,
        "N=320 should be conflict-dominated, got {orig:.1}%"
    );
    assert!(gcd < 1.0, "GcdPad must eliminate conflicts, got {gcd:.1}%");
    assert!(pad < 1.0, "Pad must eliminate conflicts, got {pad:.1}%");
}
