//! Integration tests for the beyond-the-core subsystems: the analytic miss
//! predictor vs the simulator, time skewing, the 2D baseline algorithms,
//! inter-variable padding, and the TLB model.

use tiling3d::cachesim::{Cache, CacheConfig, Hierarchy, Tlb};
use tiling3d::core::predict::{predict_tiled, predict_untiled, SweepSpec};
use tiling3d::core::{plan, CacheSpec, CostModel, Transform};
use tiling3d::loopnest::StencilShape;
use tiling3d::stencil::kernels::{ArrayLayout, Kernel};

const C16K: CacheSpec = CacheSpec::ELEMENTS_16K_DOUBLES;

/// The analytic model is a fully-associative LRU idealisation; it must
/// track the simulator *in that configuration* closely for untiled sweeps.
#[test]
fn predictor_matches_fully_associative_simulation_untiled() {
    let cases: [(Kernel, SweepSpec); 2] = [
        (Kernel::Jacobi, SweepSpec::jacobi3d()),
        (Kernel::Resid, SweepSpec::resid()),
    ];
    for (kernel, spec) in cases {
        for &n in &[216usize, 280] {
            let nk = 30;
            let mut cfg = CacheConfig::ULTRASPARC2_L1;
            cfg.ways = cfg.num_lines(); // fully associative LRU
            let mut fa = Cache::new(cfg);
            kernel.trace(n, nk, n, n, None, &mut fa);
            let sim_pct = fa.stats().miss_rate_pct();
            let pred = predict_untiled(C16K, 4, &spec, n, nk, n, n).miss_rate_pct;
            assert!(
                (sim_pct - pred).abs() < 1.0,
                "{} N={n}: fully-assoc simulated {sim_pct:.2}% vs predicted {pred:.2}%",
                kernel.name()
            );
        }
    }
}

/// The replacement-policy surprise the predictor work uncovered: in the
/// borderline working-set regime a direct-mapped cache *beats* the
/// fully-associative LRU cache on the RESID sweep, because modulo
/// placement resists LRU's cyclic eviction of the J-band.
#[test]
fn direct_mapped_beats_lru_in_the_borderline_regime() {
    let (n, nk) = (280usize, 30usize);
    let mut fa_cfg = CacheConfig::ULTRASPARC2_L1;
    fa_cfg.ways = fa_cfg.num_lines();
    let mut fa = Cache::new(fa_cfg);
    Kernel::Resid.trace(n, nk, n, n, None, &mut fa);
    let mut dm = Cache::new(CacheConfig::ULTRASPARC2_L1);
    Kernel::Resid.trace(n, nk, n, n, None, &mut dm);
    assert!(
        dm.stats().miss_rate_pct() + 3.0 < fa.stats().miss_rate_pct(),
        "direct-mapped {:.2}% should beat LRU {:.2}% here",
        dm.stats().miss_rate_pct(),
        fa.stats().miss_rate_pct()
    );
}

#[test]
fn predictor_matches_simulator_tiled() {
    // GcdPad plans are non-conflicting by construction, so the model's
    // conflict-free assumption holds outright.
    let kernel = Kernel::Jacobi;
    let spec = SweepSpec::jacobi3d();
    for &n in &[216usize, 280, 341] {
        let nk = 30;
        let p = plan(Transform::GcdPad, C16K, n, n, &kernel.shape());
        let (ti, tj) = p.tile.unwrap();
        let mut h = Hierarchy::ultrasparc2();
        kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut h);
        let sim = h.l1_miss_rate_pct();
        let pred = predict_tiled(C16K, 4, &spec, n, nk, ti, tj).miss_rate_pct;
        assert!(
            (sim - pred).abs() < 2.0,
            "N={n}: simulated {sim:.2}% vs predicted {pred:.2}%"
        );
    }
}

#[test]
fn predictor_ranks_transforms_like_the_simulator() {
    // The model's whole job: order schedules correctly. The FA simulation
    // at these sizes gives untiled 25.10%, (30,14) 19.22%, (1,1) 25.33%:
    // a degenerate tile is no better than not tiling, but only ~0.2pp
    // worse — its tiny halo columns are revisited within ~270 elements,
    // so LRU absorbs almost all the refetches the old closed-form cost
    // function charged. The histogram model ties the two at its class
    // resolution, so the ranking contract is `<=`, not `<`.
    let spec = SweepSpec::jacobi3d();
    let (n, nk) = (280usize, 30usize);
    let untiled = predict_untiled(C16K, 4, &spec, n, nk, n, n).miss_rate_pct;
    let good_tile = predict_tiled(C16K, 4, &spec, n, nk, 30, 14).miss_rate_pct;
    let degenerate = predict_tiled(C16K, 4, &spec, n, nk, 1, 1).miss_rate_pct;
    assert!(good_tile < untiled);
    assert!(untiled <= degenerate);
    assert!(
        degenerate - good_tile > 5.0,
        "degenerate {degenerate:.2}% must stay far above the good tile {good_tile:.2}%"
    );
}

#[test]
fn two_d_baselines_are_consistent() {
    use tiling3d::core::tile2d::{esseghir_tall, euc2d, lrw_square};
    let cost = CostModel::new(2, 2);
    for &di in &[200usize, 300, 341, 500] {
        let e = euc2d(2048, di, cost);
        let l = lrw_square(2048, di, cost);
        let t = esseghir_tall(2048, di, cost).unwrap();
        // Euc selects by the cost model, so nothing beats it among the
        // three (it considers the square and near-tall candidates too).
        assert!(e.cost <= l.cost + 1e-9, "di={di}");
        assert!(e.cost <= t.cost + 1e-9, "di={di}");
    }
}

#[test]
fn intervar_padding_defuses_the_base_collision() {
    // K = 32 makes GCD-padded RESID arrays collide base-to-base under
    // consecutive allocation (see EXPERIMENTS.md); staggering must fix it.
    let kernel = Kernel::Resid;
    let (n, nk) = (300usize, 32usize);
    let p = plan(Transform::GcdPad, C16K, n, n, &kernel.shape());
    let rate = |layout: ArrayLayout| {
        let mut h = Hierarchy::ultrasparc2();
        kernel.trace_with_layout(n, nk, p.padded_di, p.padded_dj, p.tile, layout, &mut h);
        h.l1_miss_rate_pct()
    };
    let consecutive = rate(ArrayLayout::Consecutive);
    let staggered = rate(ArrayLayout::Staggered {
        cache_bytes: 16 * 1024,
        line_bytes: 32,
    });
    assert!(
        staggered < consecutive - 3.0,
        "staggering should cut several points: {consecutive:.2}% -> {staggered:.2}%"
    );
}

#[test]
fn tlb_pressure_is_orders_of_magnitude_below_l1_gains() {
    let kernel = Kernel::Jacobi;
    let (n, nk) = (300usize, 30usize);
    let orig = plan(Transform::Orig, C16K, n, n, &kernel.shape());
    let tiled = plan(Transform::GcdPad, C16K, n, n, &kernel.shape());
    let tlb_rate = |p: &tiling3d::core::TransformPlan| {
        let mut t = Tlb::ultrasparc2();
        kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut t);
        t.stats().miss_rate_pct()
    };
    let l1_rate = |p: &tiling3d::core::TransformPlan| {
        let mut h = Hierarchy::ultrasparc2();
        kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut h);
        h.l1_miss_rate_pct()
    };
    let tlb_cost = tlb_rate(&tiled) - tlb_rate(&orig);
    let l1_gain = l1_rate(&orig) - l1_rate(&tiled);
    assert!(
        tlb_cost >= 0.0,
        "tiling should not reduce TLB pressure here"
    );
    assert!(
        l1_gain > 10.0 * tlb_cost,
        "L1 gain ({l1_gain:.2}pp) should dwarf TLB cost ({tlb_cost:.2}pp)"
    );
}

#[test]
fn time_skewing_beats_per_sweep_tiling_on_the_simple_kernel_only() {
    use tiling3d::stencil::timeskew;
    // Simple kernel (bare time loop, 2D): skewing reuses across steps.
    let (n, steps) = (100usize, 12usize);
    let array_bytes = (n * n * 8) as u64;
    let bases = tiling3d::core::intervar::staggered_bases(2, array_bytes, 16 * 1024, 32);
    let bases = [bases[0], bases[1]];
    let read_misses = |skewed: bool| {
        let mut l1 = Cache::new(CacheConfig::ULTRASPARC2_L1);
        if skewed {
            timeskew::trace_time_skewed(n, n, steps, steps, 8, bases, &mut l1);
        } else {
            timeskew::trace_naive(n, n, steps, bases, &mut l1);
        }
        l1.stats().read_misses
    };
    assert!(read_misses(true) * 2 < read_misses(false));
}

#[test]
fn copying_never_changes_results_and_always_adds_traffic() {
    use tiling3d::cachesim::CountingSink;
    use tiling3d::grid::{fill_random, Array3};
    use tiling3d::loopnest::TileDims;
    use tiling3d::stencil::{copyopt, jacobi3d};
    let n = 16;
    let mut b = Array3::new(n, n, n);
    fill_random(&mut b, 5);
    let mut plain = Array3::new(n, n, n);
    jacobi3d::sweep(&mut plain, &b, 0.5);
    let mut copied = Array3::new(n, n, n);
    copyopt::sweep_tiled_copying(&mut copied, &b, 0.5, TileDims::new(5, 5));
    assert!(plain.logical_eq(&copied));

    let mut c1 = CountingSink::default();
    jacobi3d::trace(n, n, n, n, n, Some(TileDims::new(5, 5)), &mut c1);
    let mut c2 = CountingSink::default();
    copyopt::trace_tiled_copying(n, n, n, n, n, TileDims::new(5, 5), &mut c2);
    assert!(c2.reads + c2.writes > c1.reads + c1.writes);
}

#[test]
fn dependence_analysis_certifies_the_papers_schedules() {
    use tiling3d::loopnest::dependence::*;
    // Out-of-place kernels: tiling trivially legal.
    assert!(jj_ii_tiling_legal(&outofplace_dependences(
        &StencilShape::resid27()
    )));
    // In-place single-colour stencil: legal via full permutability.
    assert!(jj_ii_tiling_legal(&inplace_dependences(
        &StencilShape::redblack3d()
    )));
    // Time loops require skewing (the Song & Li case).
    let time_deps: Vec<Dependence> = StencilShape::jacobi2d()
        .offsets()
        .iter()
        .map(|&(di, dj, _)| Dependence {
            distance: (1, dj, di),
            kind: DepKind::Flow,
        })
        .collect();
    assert!(!jj_ii_tiling_legal(&time_deps));
    // After the J' = J + T skew every distance is non-negative.
    let skewed: Vec<Dependence> = time_deps
        .iter()
        .map(|d| Dependence {
            distance: (d.distance.0, d.distance.1 + d.distance.0, d.distance.2),
            kind: d.kind,
        })
        .collect();
    assert!(band_fully_permutable(&skewed, &[0, 1]));
}
