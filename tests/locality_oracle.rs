//! Static-vs-simulated cross-validation gate for the locality analyzer.
//!
//! For every kernel × transform × cache geometry cell, the static miss
//! model (`core::missmodel`) predicts per-level misses with no
//! simulation; this suite replays the kernel's exact trace through
//! `cachesim` and asserts three contracts:
//!
//! 1. **Tolerance** — `|simulated - predicted|` miss rate per level stays
//!    within the stated per-level tolerance (see `TOL_*` below; the
//!    DESIGN.md §15 tolerance contract).
//! 2. **Bound** — the analytic Hupp–Jacob-style lower bound never
//!    exceeds the simulated misses of *any* level, and on the
//!    direct-mapped geometry never exceeds the simulated cold+capacity
//!    misses (3C decomposition).
//! 3. **Cliff** — a known-pathological padding (plane stride `0 mod
//!    span`) is flagged statically with a `ThrashGroup` witness and its
//!    predicted miss-rate cliff is confirmed by simulation, while the
//!    8-way geometry absorbs it — both statically and in simulation.

use tiling3d::cachesim::{
    AccessSink, CacheConfig, Hierarchy, ReplacementPolicy, ThreeC, WritePolicy,
};
use tiling3d::core::{
    lower_bound_misses, plan, predict_level, CacheSpec, KernelModel, LevelGeometry, PlanSchedule,
    Problem, Transform,
};
use tiling3d::loopnest::locality::WitnessKind;
use tiling3d::loopnest::{StencilShape, TileDims};
use tiling3d::stencil::{jacobi2d, jacobi3d, redblack, redblack2d, resid, timestep};

/// Tolerance contract (percentage points of miss rate, both levels as a
/// fraction of L1 accesses). Stated in DESIGN.md §15.
const TOL_L1_FA: f64 = 1.0; // fully-associative geometry: the pure histogram
const TOL_L1_ASSOC: f64 = 2.5; // 8-way: set-pressure near capacity is partial
const TOL_L1_DM: f64 = 4.0; // direct-mapped: first-order interference model
const TOL_L2: f64 = 1.5; // global L2 rates are small numbers
const TOL_CLIFF: f64 = 15.0; // pathological thrash cells: order-of-magnitude contract

const N3D: usize = 120;
const NK3D: usize = 20;
const N2D: usize = 300;

#[derive(Clone, Copy)]
struct Geometry {
    name: &'static str,
    l1: CacheConfig,
    l2: CacheConfig,
    l1_model: fn() -> LevelGeometry,
    l2_model: fn() -> LevelGeometry,
    tol_l1: f64,
}

fn geometries() -> [Geometry; 3] {
    [
        Geometry {
            name: "us2-dm",
            l1: CacheConfig::ULTRASPARC2_L1,
            l2: CacheConfig::ULTRASPARC2_L2,
            l1_model: LevelGeometry::ultrasparc2_l1,
            l2_model: LevelGeometry::ultrasparc2_l2,
            tol_l1: TOL_L1_DM,
        },
        Geometry {
            name: "modern-8w",
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                write_policy: WritePolicy::WriteAllocate,
                replacement: ReplacementPolicy::Lru,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                line_bytes: 64,
                ways: 8,
                write_policy: WritePolicy::WriteAllocate,
                replacement: ReplacementPolicy::Lru,
            },
            l1_model: LevelGeometry::modern_l1,
            l2_model: LevelGeometry::modern_l2,
            tol_l1: TOL_L1_ASSOC,
        },
        Geometry {
            name: "fa-16k",
            l1: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 32,
                ways: 512,
                write_policy: WritePolicy::WriteAround,
                replacement: ReplacementPolicy::Lru,
            },
            l2: CacheConfig::ULTRASPARC2_L2,
            l1_model: LevelGeometry::fa_16k,
            l2_model: LevelGeometry::ultrasparc2_l2,
            tol_l1: TOL_L1_FA,
        },
    ]
}

#[derive(Clone, Copy, PartialEq)]
enum Kernel {
    Jacobi3d,
    Jacobi2d,
    RedBlack3d,
    RedBlack2dNaive,
    RedBlack2dFused,
    Resid,
    Timestep,
}

const KERNELS: [Kernel; 7] = [
    Kernel::Jacobi3d,
    Kernel::Jacobi2d,
    Kernel::RedBlack3d,
    Kernel::RedBlack2dNaive,
    Kernel::RedBlack2dFused,
    Kernel::Resid,
    Kernel::Timestep,
];

const TRANSFORMS: [Transform; 4] = [
    Transform::Orig,
    Transform::GcdPad,
    Transform::Pad,
    Transform::Tile,
];

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Jacobi3d => "jacobi3d",
            Kernel::Jacobi2d => "jacobi2d",
            Kernel::RedBlack3d => "redblack3d",
            Kernel::RedBlack2dNaive => "redblack2d",
            Kernel::RedBlack2dFused => "redblack2d-f",
            Kernel::Resid => "resid",
            Kernel::Timestep => "timestep",
        }
    }

    fn two_d(self) -> bool {
        matches!(
            self,
            Kernel::Jacobi2d | Kernel::RedBlack2dNaive | Kernel::RedBlack2dFused
        )
    }

    /// The shape driving plan selection (pads + tiles).
    fn plan_shape(self) -> StencilShape {
        match self {
            Kernel::Jacobi3d | Kernel::Timestep => StencilShape::jacobi3d(),
            Kernel::Jacobi2d => StencilShape::jacobi2d(),
            Kernel::RedBlack3d => StencilShape::redblack3d_fused(),
            Kernel::RedBlack2dNaive | Kernel::RedBlack2dFused => StencilShape::redblack2d(),
            Kernel::Resid => StencilShape::resid27(),
        }
    }
}

/// One realised cell: the model inputs plus the trace closure's data.
struct Cell {
    model: KernelModel,
    sched: PlanSchedule,
    prob: Problem,
}

/// Maps a transform row onto a kernel: padded allocation + optional tile.
/// 2D kernels take the pad but run untiled (the paper tiles only 3D
/// nests; `Tile` degrades to `Orig` for them).
fn realise(kernel: Kernel, t: Transform, l1_cache: CacheSpec) -> Cell {
    let n = if kernel.two_d() { N2D } else { N3D };
    let p = plan(t, l1_cache, n, n, &kernel.plan_shape());
    let (di, dj) = (p.padded_di, p.padded_dj);
    // 2D kernels take the pad but run untiled (the paper tiles only 3D
    // nests). 3D red-black realises its locality transform as *fusion*
    // (Fig 12's transformation): the skewed-tiled schedule's working set
    // sits exactly on the capacity boundary by construction (GcdPad
    // fills the cache and the skew widens the footprint by one row and
    // column), where a binary hit/miss classifier cannot be meaningful.
    let tile = if kernel.two_d() || kernel == Kernel::RedBlack3d {
        None
    } else {
        p.tile
    };
    let sched = match tile {
        Some((ti, tj)) => PlanSchedule::Tiled { ti, tj },
        None => PlanSchedule::Untiled,
    };
    let model = match kernel {
        Kernel::Jacobi3d => KernelModel::jacobi3d(),
        Kernel::Jacobi2d => KernelModel::jacobi2d(),
        Kernel::RedBlack3d if t == Transform::Orig => KernelModel::redblack_naive(),
        Kernel::RedBlack3d => KernelModel::redblack_fused(),
        Kernel::RedBlack2dNaive => KernelModel::redblack2d_naive(),
        Kernel::RedBlack2dFused => KernelModel::redblack2d_fused(),
        Kernel::Resid => KernelModel::resid(),
        Kernel::Timestep => KernelModel::timestep(2),
    };
    let prob = if kernel.two_d() {
        Problem {
            n,
            nk: 1,
            di,
            dj: n,
        }
    } else {
        Problem {
            n,
            nk: NK3D,
            di,
            dj,
        }
    };
    Cell { model, sched, prob }
}

/// Replays the cell's exact kernel trace into any sink.
fn replay<S: AccessSink>(kernel: Kernel, cell: &Cell, sink: &mut S) {
    let Problem { n, nk, di, dj } = cell.prob;
    let tile = match cell.sched {
        PlanSchedule::Tiled { ti, tj } => Some(TileDims { ti, tj }),
        PlanSchedule::Untiled => None,
    };
    match kernel {
        Kernel::Jacobi3d => jacobi3d::trace(n, n, nk, di, dj, tile, sink),
        Kernel::Jacobi2d => jacobi2d::trace(n, n, di, sink),
        Kernel::RedBlack3d => {
            let sched = if cell.model.fused3d {
                redblack::Schedule::Fused
            } else {
                redblack::Schedule::Naive
            };
            redblack::trace(n, nk, di, dj, sched, sink);
        }
        Kernel::RedBlack2dNaive => redblack2d::trace(n, di, redblack2d::Schedule2D::Naive, sink),
        Kernel::RedBlack2dFused => redblack2d::trace(n, di, redblack2d::Schedule2D::Fused, sink),
        Kernel::Resid => resid::trace(n, n, nk, di, dj, tile, sink),
        Kernel::Timestep => timestep::trace(n, n, nk, di, dj, tile, 2, sink),
    }
}

struct Row {
    kernel: &'static str,
    transform: &'static str,
    geom: &'static str,
    level: &'static str,
    sim_pct: f64,
    pred_pct: f64,
    bound: f64,
    sim_misses: f64,
    tol: f64,
}

fn run_matrix() -> Vec<Row> {
    let mut rows = Vec::new();
    for g in geometries() {
        let l1_cache = CacheSpec::from_bytes(g.l1.size_bytes);
        for kernel in KERNELS {
            for t in TRANSFORMS {
                let cell = realise(kernel, t, l1_cache);
                let mut h = Hierarchy::new(g.l1, g.l2);
                replay(kernel, &cell, &mut h);
                let (l1s, l2s) = (h.l1_stats(), h.l2_stats());
                let acc = l1s.accesses as f64;
                let p1 = predict_level(&cell.model, cell.sched, &cell.prob, &(g.l1_model)());
                let p2 = predict_level(&cell.model, cell.sched, &cell.prob, &(g.l2_model)());
                let b1 = lower_bound_misses(&cell.model, &cell.prob, &(g.l1_model)(), 0);
                let b2 = lower_bound_misses(
                    &cell.model,
                    &cell.prob,
                    &(g.l2_model)(),
                    (g.l1_model)().capacity_elements(),
                );
                // A cell the analyzer statically flags as pathological is
                // in the thrash regime: the contract there is the cliff
                // tolerance (detect the cliff, predict its magnitude to
                // first order), not the clean-cell tolerance.
                let tol1 = if p1.conflicts.pathological {
                    TOL_CLIFF
                } else {
                    g.tol_l1
                };
                let tol2 = if p2.conflicts.pathological {
                    TOL_CLIFF
                } else {
                    TOL_L2
                };
                rows.push(Row {
                    kernel: kernel.name(),
                    transform: t.name(),
                    geom: g.name,
                    level: "L1",
                    sim_pct: 100.0 * l1s.misses as f64 / acc,
                    pred_pct: 100.0 * p1.misses / p1.accesses,
                    bound: b1,
                    sim_misses: l1s.misses as f64,
                    tol: tol1,
                });
                rows.push(Row {
                    kernel: kernel.name(),
                    transform: t.name(),
                    geom: g.name,
                    level: "L2",
                    sim_pct: 100.0 * l2s.misses as f64 / acc,
                    pred_pct: 100.0 * p2.misses / p2.accesses,
                    bound: b2,
                    sim_misses: l2s.misses as f64,
                    tol: tol2,
                });
            }
        }
    }
    rows
}

/// The full matrix: per-level tolerance + bound contracts, every cell.
#[test]
fn static_predictions_match_cachesim_across_the_matrix() {
    let rows = run_matrix();
    let mut failures = Vec::new();
    let mut worst: f64 = 0.0;
    for r in &rows {
        let delta = (r.sim_pct - r.pred_pct).abs();
        worst = worst.max(delta - r.tol);
        println!(
            "{:>9} {:12} {:8} {:3}  sim {:6.2}%  pred {:6.2}%  (delta {:5.2} tol {:4.1})  bound {:>12.0} / sim {:>12.0}",
            r.geom, r.kernel, r.transform, r.level, r.sim_pct, r.pred_pct, delta, r.tol,
            r.bound, r.sim_misses
        );
        if delta > r.tol {
            failures.push(format!(
                "{} {} {} {}: simulated {:.2}% vs predicted {:.2}% (tol {})",
                r.geom, r.kernel, r.transform, r.level, r.sim_pct, r.pred_pct, r.tol
            ));
        }
        if r.bound > r.sim_misses + 0.5 {
            failures.push(format!(
                "{} {} {} {}: bound {:.0} exceeds simulated misses {:.0}",
                r.geom, r.kernel, r.transform, r.level, r.bound, r.sim_misses
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} matrix cells breached the contract:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// On the direct-mapped geometry the bound must sit below even the
/// *cold+capacity* share of simulated misses (conflict misses are extra).
#[test]
fn lower_bound_respects_cold_plus_capacity_on_direct_mapped_l1() {
    let g = geometries()[0];
    let l1_cache = CacheSpec::from_bytes(g.l1.size_bytes);
    for kernel in KERNELS {
        for t in [Transform::Orig, Transform::GcdPad] {
            let cell = realise(kernel, t, l1_cache);
            let mut tc = ThreeC::new(g.l1);
            replay(kernel, &cell, &mut tc);
            let cold_capacity = (tc.cold + tc.capacity) as f64;
            let bound = lower_bound_misses(&cell.model, &cell.prob, &(g.l1_model)(), 0);
            assert!(
                bound <= cold_capacity + 0.5,
                "{} {}: bound {:.0} exceeds cold+capacity {:.0}",
                kernel.name(),
                t.name(),
                bound,
                cold_capacity
            );
        }
    }
}

/// The paper's disaster case: plane stride `0 mod span`. The analyzer
/// must flag it statically (typed ThrashGroup witness), predict the
/// cliff, and the simulator must confirm it; the 8-way geometry absorbs
/// the same padding, again both statically and in simulation.
#[test]
fn pathological_pad_cliff_is_predicted_and_confirmed() {
    let (n, nk, pad) = (250usize, 24usize, 256usize);
    let model = KernelModel::jacobi3d();
    let prob = Problem {
        n,
        nk,
        di: pad,
        dj: pad,
    };

    // Static: thrash witness + cliff on the direct-mapped L1.
    let lp = predict_level(
        &model,
        PlanSchedule::Untiled,
        &prob,
        &LevelGeometry::ultrasparc2_l1(),
    );
    let thrash: Vec<_> = lp
        .conflicts
        .witnesses
        .iter()
        .filter(|w| w.kind == WitnessKind::ThrashGroup)
        .collect();
    assert!(
        !thrash.is_empty(),
        "no ThrashGroup witness for the 0-mod-span pad"
    );
    let w = thrash[0];
    assert_eq!(w.period_iters, 1);
    assert!(w.lines > w.ways, "witness must name more lines than ways");
    println!(
        "ThrashGroup witness: refs {:?} in set window {:?}, {} lines vs {} ways",
        w.refs, w.set_window, w.lines, w.ways
    );
    assert!(lp.conflicts.pathological);
    let fa_pct = 100.0 * lp.fa_misses / lp.accesses;
    assert!(
        lp.miss_rate_pct > fa_pct + 25.0,
        "predicted no cliff: {:.2}% vs FA {:.2}%",
        lp.miss_rate_pct,
        fa_pct
    );

    // Simulated: the cliff is real on direct-mapped hardware.
    let mut h = Hierarchy::ultrasparc2();
    jacobi3d::trace(n, n, nk, pad, pad, None, &mut h);
    let sim_pct = h.l1_miss_rate_pct();
    println!(
        "pathological pad: sim {sim_pct:.2}% vs pred {:.2}% (FA model {fa_pct:.2}%)",
        lp.miss_rate_pct
    );
    assert!(
        sim_pct > fa_pct + 25.0,
        "simulator saw no cliff: {sim_pct:.2}% vs FA {fa_pct:.2}%"
    );
    assert!(
        (sim_pct - lp.miss_rate_pct).abs() < TOL_CLIFF,
        "cliff magnitude off: sim {sim_pct:.2}% vs pred {:.2}%",
        lp.miss_rate_pct
    );

    // The same padding on the 8-way geometry: statically clean...
    let lp8 = predict_level(
        &model,
        PlanSchedule::Untiled,
        &prob,
        &LevelGeometry::modern_l1(),
    );
    assert!(
        lp8.conflicts.thrash_refs.is_empty(),
        "8-way should absorb the thrash"
    );
    // ... and the simulated 8-way rate stays near its FA prediction.
    let g8 = geometries()[1];
    let mut h8 = Hierarchy::new(g8.l1, g8.l2);
    jacobi3d::trace(n, n, nk, pad, pad, None, &mut h8);
    let sim8 = h8.l1_miss_rate_pct();
    let pred8 = lp8.miss_rate_pct;
    assert!(
        (sim8 - pred8).abs() < TOL_L1_ASSOC,
        "8-way cell breached tolerance: sim {sim8:.2}% vs pred {pred8:.2}%"
    );
}
