//! End-to-end pipeline tests: plan → kernel → trace → simulator, plus the
//! "compiler view" cross-check (loop-IR interpreter vs hand-written
//! kernels).

use tiling3d::cachesim::{AccessSink, CountingSink, DistinctLineCounter, Hierarchy};
use tiling3d::core::{plan, CacheSpec, CostModel, Transform};
use tiling3d::loopnest::{ArrayDesc, Nest, StencilShape};
use tiling3d::stencil::kernels::Kernel;

#[test]
fn trace_volumes_match_closed_forms_for_all_plans() {
    let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
    for kernel in Kernel::ALL {
        for t in Transform::ALL {
            let (n, nk) = (40usize, 12usize);
            let p = plan(t, cache, n, n, &kernel.shape());
            let mut c = CountingSink::default();
            kernel.trace(n, nk, p.padded_di, p.padded_dj, p.tile, &mut c);
            let pts = ((n - 2) * (n - 2) * (nk - 2)) as u64;
            assert_eq!(
                c.reads + c.writes,
                pts * kernel.accesses_per_point(),
                "{} {:?}",
                kernel.name(),
                t
            );
        }
    }
}

/// The cost model predicts *distinct lines touched per iteration point* up
/// to the invariant N^3/L factor; check the prediction against the actual
/// distinct-line counts of traced tiles (fully-associative view).
#[test]
fn cost_model_tracks_distinct_line_traffic() {
    let shape = StencilShape::jacobi3d();
    let cost = CostModel::from_shape(&shape);
    let (n, nk) = (120usize, 12usize);
    let count_for = |ti: usize, tj: usize| -> f64 {
        let mut d = DistinctLineCounter::new(32);
        // Trace only array B (reads): replicate the read side by tracing
        // the full kernel and counting all lines; A contributes the same
        // constant per tile shape so the comparison still orders shapes.
        tiling3d::stencil::jacobi3d::trace(
            n,
            n,
            nk,
            n,
            n,
            Some(tiling3d::loopnest::TileDims::new(ti, tj)),
            &mut d,
        );
        d.distinct_lines() as f64
    };
    // Square-ish tile vs degenerate tile of equal area: the cost model says
    // the square tile touches fewer lines; the trace must agree.
    let square = count_for(16, 16);
    let skewed = count_for(256, 1);
    assert!(cost.eval(16, 16) < cost.eval(256, 1));
    assert!(
        square <= skewed,
        "square tile should touch no more lines: {square} vs {skewed}"
    );
}

#[test]
fn loop_ir_reproduces_kernel_misses_for_tiled_jacobi() {
    // Build the tiled Jacobi nest in the loop IR, interpret it, and check
    // the *simulated misses* equal the handwritten kernel trace's.
    let (n, nk, di, dj) = (60usize, 10usize, 64usize, 62usize);
    let (ti, tj) = (14usize, 9usize);

    let mut h1 = Hierarchy::ultrasparc2();
    tiling3d::stencil::jacobi3d::trace(
        n,
        n,
        nk,
        di,
        dj,
        Some(tiling3d::loopnest::TileDims::new(ti, tj)),
        &mut h1,
    );

    let mut nest = Nest::stencil(
        &StencilShape::jacobi3d(),
        (1, n as i64 - 2),
        (1, n as i64 - 2),
        (1, nk as i64 - 2),
        0,
        1,
    );
    nest.tile_jj_ii(ti, tj);
    let arrays = [
        ArrayDesc {
            base: (di * dj * nk * 8) as u64,
            di,
            dj,
            dk: nk,
        }, // B after A
        ArrayDesc {
            base: 0,
            di,
            dj,
            dk: nk,
        }, // A
    ];
    let mut h2 = Hierarchy::ultrasparc2();
    nest.execute_checked(&arrays, &mut h2)
        .expect("tiled jacobi nest passes the IR verifier");

    assert_eq!(h1.l1_stats(), h2.l1_stats());
    assert_eq!(h1.l2_stats(), h2.l2_stats());
}

#[test]
fn resid_ir_trace_is_a_permutation_of_kernel_trace() {
    // RESID's source orders the 27 U reads centre-first; the generic shape
    // orders them lexicographically. Same multiset, same miss totals under
    // a fully-associative distinct-line view.
    let (n, nk) = (20usize, 8usize);
    let mut d1 = DistinctLineCounter::new(32);
    tiling3d::stencil::resid::trace(n, n, nk, n, n, None, &mut d1);

    let mut refs: Vec<tiling3d::loopnest::ArrayRef> = StencilShape::resid27()
        .offsets()
        .iter()
        .map(|&off| tiling3d::loopnest::ArrayRef {
            array: 1,
            off,
            write: false,
        })
        .collect();
    refs.push(tiling3d::loopnest::ArrayRef {
        array: 2,
        off: (0, 0, 0),
        write: false,
    }); // V read
    refs.push(tiling3d::loopnest::ArrayRef {
        array: 0,
        off: (0, 0, 0),
        write: true,
    }); // R write
    let nest = Nest::source(
        (1, n as i64 - 2),
        (1, n as i64 - 2),
        (1, nk as i64 - 2),
        refs,
    );
    let bytes = (n * n * nk * 8) as u64;
    let arrays = [
        ArrayDesc {
            base: 0,
            di: n,
            dj: n,
            dk: nk,
        },
        ArrayDesc {
            base: bytes,
            di: n,
            dj: n,
            dk: nk,
        },
        ArrayDesc {
            base: 2 * bytes,
            di: n,
            dj: n,
            dk: nk,
        },
    ];
    let mut d2 = DistinctLineCounter::new(32);
    nest.execute_checked(&arrays, &mut d2)
        .expect("resid nest passes the IR verifier");

    assert_eq!(d1.accesses, d2.accesses);
    assert_eq!(d1.distinct_lines(), d2.distinct_lines());
}

#[test]
fn write_around_isolates_output_array() {
    // The paper's analysis assumes writes to A cannot evict B's tile.
    // Verify directly: the L1 miss count of the B-read stream is identical
    // whether or not the A-writes are interleaved.
    struct ReadsOnly<'a>(&'a mut Hierarchy);
    impl AccessSink for ReadsOnly<'_> {
        fn read(&mut self, a: u64) {
            self.0.read(a);
        }
        fn write(&mut self, _a: u64) {}
    }
    let (n, nk) = (80usize, 10usize);
    let mut with_writes = Hierarchy::ultrasparc2();
    tiling3d::stencil::jacobi3d::trace(n, n, nk, n, n, None, &mut with_writes);
    let mut reads_only = Hierarchy::ultrasparc2();
    tiling3d::stencil::jacobi3d::trace(n, n, nk, n, n, None, &mut ReadsOnly(&mut reads_only));
    assert_eq!(
        with_writes.l1_stats().read_misses,
        reads_only.l1_stats().read_misses,
        "write-around writes must not disturb the read stream"
    );
}
