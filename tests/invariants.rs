//! Randomized invariant tests, driven by a deterministic `Xorshift64`
//! generator instead of an external property-testing framework: every run
//! visits the same cases, failures are reproducible from the printed
//! parameters, and the workspace needs no network-fetched dependencies.

use tiling3d::cachesim::{Cache, CacheConfig, ReplacementPolicy, WritePolicy};
use tiling3d::core::nonconflict::{enumerate_depth, max_ti, verify_nonconflicting};
use tiling3d::core::{gcd_pad, pad, plan, CacheSpec, CostModel, Transform};
use tiling3d::grid::{fill_random, Array3, Xorshift64};
use tiling3d::loopnest::{StencilShape, TileDims};
use tiling3d::stencil::{jacobi3d, redblack, resid};

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// `lo..hi` uniform sample (half-open).
fn range(rng: &mut Xorshift64, lo: usize, hi: usize) -> usize {
    lo + rng.next_below(hi - lo)
}

/// The incremental enumeration agrees with brute force and with the
/// occupancy oracle for arbitrary geometry.
#[test]
fn nonconflicting_enumeration_is_sound_and_maximal() {
    let mut rng = Xorshift64::new(0xA11CE);
    for _ in 0..64 {
        let c = 1usize << range(&mut rng, 6, 12); // cache 64..2048 elements
        let di = range(&mut rng, 3, 600);
        let dj = range(&mut rng, 3, 600);
        let tk = range(&mut rng, 1, 5);
        let tiles = enumerate_depth(c, di, dj, tk);
        for t in &tiles {
            assert_eq!(
                max_ti(c, di, dj, t.tj, tk),
                t.ti,
                "c={c} di={di} dj={dj} tk={tk}"
            );
            assert!(
                verify_nonconflicting(c, di, dj, t),
                "c={c} di={di} dj={dj} {t:?}"
            );
            let bigger = tiling3d::core::ArrayTile { ti: t.ti + 1, ..*t };
            assert!(
                !verify_nonconflicting(c, di, dj, &bigger),
                "tile not maximal: c={c} di={di} dj={dj} {t:?}"
            );
        }
        // Breakpoints strictly decrease in TI and increase in TJ.
        for w in tiles.windows(2) {
            assert!(w[1].ti < w[0].ti && w[1].tj > w[0].tj);
        }
    }
}

/// GcdPad's promised invariants hold for arbitrary dimensions:
/// gcd(DI_p, C) = TI, gcd(DJ_p, C) = TJ, pads bounded by 2T-1, and the
/// resulting array tile never self-interferes.
#[test]
fn gcdpad_invariants() {
    let mut rng = Xorshift64::new(0x6CD);
    for _ in 0..256 {
        let di = range(&mut rng, 8, 2000);
        let dj = range(&mut rng, 8, 2000);
        let cache = CacheSpec { elements: 2048 };
        let shape = StencilShape::jacobi3d();
        let g = gcd_pad(cache, di, dj, &shape);
        assert_eq!(gcd(g.di_p, 2048), g.array_tile.ti, "di={di} dj={dj}");
        assert_eq!(gcd(g.dj_p, 2048), g.array_tile.tj, "di={di} dj={dj}");
        assert!(g.di_p >= di && g.di_p - di < 2 * g.array_tile.ti);
        assert!(g.dj_p >= dj && g.dj_p - dj < 2 * g.array_tile.tj);
        assert!(verify_nonconflicting(2048, g.di_p, g.dj_p, &g.array_tile));
    }
}

/// Pad's contract: pads bounded by GcdPad's, cost no worse than GcdPad's,
/// selected tile conflict-free under the selected pads.
#[test]
fn pad_contract() {
    // Small domain: cover it exhaustively instead of sampling.
    for d in 100usize..420 {
        let cache = CacheSpec { elements: 2048 };
        let shape = StencilShape::jacobi3d();
        let g = gcd_pad(cache, d, d, &shape);
        let p = pad(cache, d, d, &shape);
        assert!(p.di_p >= d && p.di_p <= g.di_p, "d={d}");
        assert!(p.dj_p >= d && p.dj_p <= g.dj_p, "d={d}");
        let cost = CostModel::from_shape(&shape);
        let cost_star = cost.eval(g.iter_tile.0 as i64, g.iter_tile.1 as i64);
        assert!(p.selection.cost <= cost_star + 1e-9, "d={d}");
        assert!(verify_nonconflicting(
            2048,
            p.di_p,
            p.dj_p,
            &p.selection.array_tile
        ));
    }
}

/// Tiled Jacobi equals untiled for arbitrary shapes, pads and tiles.
#[test]
fn jacobi_tiling_preserves_results() {
    let mut rng = Xorshift64::new(0x1AC0B1);
    for _ in 0..64 {
        let n = range(&mut rng, 4, 24);
        let nk = range(&mut rng, 3, 12);
        let (di, dj) = (n + range(&mut rng, 0, 7), n + range(&mut rng, 0, 7));
        let (ti, tj) = (range(&mut rng, 1, 30), range(&mut rng, 1, 30));
        let seed = rng.next_u64();
        let mut b = Array3::with_padding(n, n, nk, di, dj);
        fill_random(&mut b, seed);
        let mut a1 = Array3::with_padding(n, n, nk, di, dj);
        let mut a2 = a1.clone();
        jacobi3d::sweep(&mut a1, &b, 1.0 / 6.0);
        jacobi3d::sweep_tiled(&mut a2, &b, 1.0 / 6.0, TileDims::new(ti, tj));
        assert!(
            a1.logical_eq(&a2),
            "n={n} nk={nk} di={di} dj={dj} tile=({ti},{tj})"
        );
    }
}

/// The skewed tiled red-black schedule equals the naive schedule for
/// arbitrary sizes and tiles — the strongest correctness property in the
/// workspace (ordering-sensitive in-place updates).
#[test]
fn redblack_tiling_preserves_results() {
    let mut rng = Xorshift64::new(0xED81AC6);
    for _ in 0..64 {
        let n = range(&mut rng, 4, 20);
        let nk = range(&mut rng, 3, 14);
        let (ti, tj) = (range(&mut rng, 1, 24), range(&mut rng, 1, 24));
        let seed = rng.next_u64();
        let mut a = Array3::new(n, n, nk);
        fill_random(&mut a, seed);
        let mut b = a.clone();
        redblack::sweep(&mut a, 0.4, 0.1, redblack::Schedule::Naive);
        redblack::sweep(
            &mut b,
            0.4,
            0.1,
            redblack::Schedule::Tiled(TileDims::new(ti, tj)),
        );
        assert!(a.logical_eq(&b), "n={n} nk={nk} tile=({ti},{tj})");
    }
}

/// Parallel K-slab sweeps equal sequential for arbitrary thread counts.
#[test]
fn parallel_equals_sequential() {
    let mut rng = Xorshift64::new(0x9A8A11E1);
    for _ in 0..24 {
        let n = range(&mut rng, 5, 20);
        let nk = range(&mut rng, 3, 16);
        let threads = range(&mut rng, 1, 9);
        let seed = rng.next_u64();
        let mut u = Array3::new(n, n, nk);
        let mut v = Array3::new(n, n, nk);
        fill_random(&mut u, seed);
        fill_random(&mut v, seed ^ 1);
        let mut seq = Array3::new(n, n, nk);
        resid::sweep(&mut seq, &u, &v, &resid::Coeffs::MGRID_A, None);
        let mut par = Array3::new(n, n, nk);
        tiling3d::stencil::parallel::resid_sweep(
            &mut par,
            &u,
            &v,
            &resid::Coeffs::MGRID_A,
            None,
            threads,
        );
        assert!(seq.logical_eq(&par), "n={n} nk={nk} threads={threads}");
    }
}

/// The set-associative cache against a trivially-correct reference model
/// (vector of per-set LRU queues).
#[test]
fn cache_matches_reference_lru_model() {
    let mut rng = Xorshift64::new(0xCAC8E);
    for case in 0..64 {
        let ways = 1usize << (case % 3);
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways,
            write_policy: WritePolicy::WriteAround,
            replacement: ReplacementPolicy::Lru,
        };
        let mut cache = Cache::new(cfg);
        // Reference: per-set Vec kept in LRU order (front = most recent).
        let sets = cfg.num_sets();
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
        let len = range(&mut rng, 1, 400);
        for _ in 0..len {
            let addr = rng.next_u64() % 4096;
            let is_write = rng.next_u64() & 1 == 1;
            let line = addr >> 6;
            let set = (line as usize) % sets;
            let q = &mut model[set];
            let hit = q.iter().position(|&t| t == line);
            let expect_miss = hit.is_none();
            match hit {
                Some(pos) => {
                    let t = q.remove(pos);
                    q.insert(0, t);
                }
                None if !is_write => {
                    q.insert(0, line);
                    q.truncate(ways);
                }
                None => {} // write-around: no allocate
            }
            let miss = cache.access(addr, is_write);
            assert_eq!(
                miss, expect_miss,
                "ways {ways} addr {addr} write {is_write}"
            );
        }
    }
}

/// Cost model sanity: scaling both tile dims up never increases cost, and
/// the square tile is optimal among equal-area tiles.
#[test]
fn cost_model_monotone_and_square_optimal() {
    let cost = CostModel::new(2, 2);
    for ti in 1i64..64 {
        for tj in 1i64..64 {
            assert!(
                cost.eval(2 * ti, 2 * tj) <= cost.eval(ti, tj),
                "({ti},{tj})"
            );
            let area = ti * tj;
            let sq = (area as f64).sqrt();
            let (a, b) = (sq.floor() as i64, sq.ceil() as i64);
            if a > 0 && a * b == area {
                assert!(cost.eval(a, b) <= cost.eval(ti, tj) + 1e-12, "({ti},{tj})");
            }
        }
    }
}

/// Planning never panics and always yields legal plans for any size.
#[test]
fn planning_is_total() {
    for n in 3usize..700 {
        for t in Transform::ALL {
            let p = plan(
                t,
                CacheSpec::ELEMENTS_16K_DOUBLES,
                n,
                n,
                &StencilShape::resid27(),
            );
            assert!(p.padded_di >= n && p.padded_dj >= n, "{t:?} n={n}");
            if let Some((ti, tj)) = p.tile {
                assert!(ti >= 1 && tj >= 1, "{t:?} n={n}");
            }
        }
    }
}

/// The 3C classes partition the real cache's misses for any trace.
#[test]
fn threec_classes_partition_misses() {
    use tiling3d::cachesim::{AccessSink, ThreeC};
    let mut rng = Xorshift64::new(0x3C);
    for case in 0..48 {
        let cfg = CacheConfig {
            size_bytes: 2048,
            line_bytes: 32,
            ways: 1 << (case % 2),
            write_policy: WritePolicy::WriteAround,
            replacement: ReplacementPolicy::Lru,
        };
        let mut c = ThreeC::new(cfg);
        let len = range(&mut rng, 1, 600);
        for _ in 0..len {
            let a = rng.next_u64() % 16384;
            if rng.next_u64() & 1 == 1 {
                c.write(a);
            } else {
                c.read(a);
            }
        }
        assert_eq!(c.cold + c.capacity + c.conflict, c.total_misses());
        assert_eq!(c.accesses, len as u64);
    }
}

/// Euclid's 2D candidate tiles are always sound for arbitrary strides.
#[test]
fn euclid_2d_tiles_never_conflict() {
    use tiling3d::core::nonconflict::euclid_tiles_2d;
    use tiling3d::core::ArrayTile;
    let mut rng = Xorshift64::new(0xE0C11D);
    for _ in 0..128 {
        let c = 1usize << range(&mut rng, 5, 12);
        let di = range(&mut rng, 1, 5000);
        for (ti, tj) in euclid_tiles_2d(c, di) {
            let tile = ArrayTile { ti, tj, tk: 1 };
            assert!(verify_nonconflicting(c, di, di, &tile), "c={c} di={di}");
        }
    }
}

/// Inter-variable staggering never shrinks separations below the target
/// and keeps arrays disjoint, for arbitrary geometry.
#[test]
fn staggered_bases_are_sound() {
    use tiling3d::core::intervar::staggered_bases;
    let mut rng = Xorshift64::new(0x57A66E);
    for _ in 0..96 {
        let count = range(&mut rng, 1, 6);
        let array_kb = range(&mut rng, 1, 512) as u64;
        let cache = 1u64 << range(&mut rng, 10, 18);
        let bytes = array_kb * 1024 + 8; // deliberately unaligned sizes
        let bases = staggered_bases(count, bytes, cache, 64);
        for w in bases.windows(2) {
            assert!(w[1] >= w[0] + bytes, "arrays overlap: {bases:?}");
        }
        for &b in &bases {
            assert_eq!(b % 64, 0);
        }
    }
}

/// The time-skewed schedule equals the naive one for arbitrary parameters
/// (the strongest legality check for the skew).
#[test]
fn time_skewing_preserves_results() {
    use tiling3d::grid::{fill_random2, Array2};
    use tiling3d::stencil::timeskew;
    let mut rng = Xorshift64::new(0x7157E);
    for _ in 0..48 {
        let n = range(&mut rng, 4, 16);
        let steps = range(&mut rng, 0, 7);
        let (st, sj) = (range(&mut rng, 1, 9), range(&mut rng, 1, 9));
        let seed = rng.next_u64();
        let mut b0 = Array2::new(n, n);
        fill_random2(&mut b0, seed);
        let mut a = [b0.clone(), b0.clone()];
        let mut b = [b0.clone(), b0];
        timeskew::run_naive(&mut a, 0.25, steps);
        timeskew::run_time_skewed(&mut b, 0.25, steps, st, sj);
        assert!(
            a[steps % 2].logical_eq(&b[steps % 2]),
            "n={n} steps={steps} skew=({st},{sj})"
        );
    }
}

/// The analytic predictor is internally consistent: bigger non-degenerate
/// tiles never predict more misses — *as long as the bigger tile's
/// working set still fits the cache*. Past that the reverse is true (and
/// really happens: simulating (13,41) vs (26,82) at N=200 on the 16KB FA
/// cache gives 23.0% vs 26.7% — the doubled tile's 7056-element K-sweep
/// footprint overflows the 2048-element cache and loses its plane
/// reuse), which is the entire reason tile-size selection caps the tile.
#[test]
fn predictor_monotone_in_tile_area() {
    use tiling3d::core::predict::{predict_tiled, SweepSpec};
    let spec = SweepSpec::jacobi3d();
    let elems = tiling3d::core::CacheSpec::ELEMENTS_16K_DOUBLES.elements;
    let mut rng = Xorshift64::new(0x9ED1C7);
    for _ in 0..96 {
        let (ti, tj) = (range(&mut rng, 2, 64), range(&mut rng, 2, 64));
        // Only compare when the doubled tile's 3-plane working set
        // (ATD x (TI+m)(TJ+n), the quantity tile selection bounds)
        // still fits.
        if 3 * (2 * ti + 2) * (2 * tj + 2) > elems {
            continue;
        }
        let small = predict_tiled(
            tiling3d::core::CacheSpec::ELEMENTS_16K_DOUBLES,
            4,
            &spec,
            200,
            30,
            ti,
            tj,
        );
        let big = predict_tiled(
            tiling3d::core::CacheSpec::ELEMENTS_16K_DOUBLES,
            4,
            &spec,
            200,
            30,
            2 * ti,
            2 * tj,
        );
        assert!(big.misses <= small.misses + 1e-9, "tile=({ti},{tj})");
    }
}
