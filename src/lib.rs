//! # tiling3d
//!
//! A reproduction of **Rivera & Tseng, "Tiling Optimizations for 3D
//! Scientific Computations" (SC 2000)** as a production-quality Rust
//! workspace. This facade crate re-exports the public API of every
//! subsystem:
//!
//! * [`grid`] — padded column-major 2D/3D arrays (the Fortran-layout data
//!   substrate),
//! * [`cachesim`] — a multi-level set-associative cache simulator driven by
//!   exact kernel access traces,
//! * [`loopnest`] — a miniature loop-transformation framework (iteration
//!   spaces, strip-mine + permute tiling, stencil shapes, reuse analysis),
//! * [`core`] — the paper's algorithms: the tile cost model, non-conflicting
//!   tile enumeration, `Euc3D`, `GcdPad`, and `Pad`,
//! * [`stencil`] — the three evaluation kernels (JACOBI, REDBLACK, RESID)
//!   plus the multigrid helper kernels, each in original and tiled form,
//!   with matching cache-trace generators,
//! * [`multigrid`] — a full V-cycle multigrid Poisson solver in the style of
//!   SPEC/NAS MGRID.
//!
//! Beyond the paper's core: [`core`] also houses the classical 2D tile
//! algorithms (`tile2d`), the Section 3.1 copy-cost model (`copymodel`),
//! the Section 3.2 effective-cache method (`effcache`), Section 3.5
//! inter-variable padding (`intervar`) and an analytic miss predictor
//! (`predict`); [`cachesim`] adds a TLB and a 3C (cold/capacity/conflict)
//! classifier; [`loopnest`] adds dependence analysis; [`stencil`] adds the
//! Fig 5 time-step pattern, tile copying, 2D red-black fusion and a
//! time-skewing baseline. The `tiling3d-bench` crate regenerates every
//! table and figure of the paper, and `tiling3d-cli` exposes planning,
//! simulation and prediction as a command-line tool.
//!
//! ## Quickstart
//!
//! ```
//! use tiling3d::core::{plan, CacheSpec, Transform};
//! use tiling3d::loopnest::StencilShape;
//!
//! // Plan tiling + padding for a 200x200xM array targeting a 16KB
//! // direct-mapped L1 holding 2048 doubles, for the 3D Jacobi stencil.
//! let cache = CacheSpec::ELEMENTS_16K_DOUBLES;
//! let p = plan(Transform::Pad, cache, 200, 200, &StencilShape::jacobi3d());
//! let (ti, tj) = p.tile.unwrap();
//! assert!(ti > 0 && tj > 0);
//! assert!(p.padded_di >= 200 && p.padded_dj >= 200);
//! ```

pub use tiling3d_cachesim as cachesim;
pub use tiling3d_core as core;
pub use tiling3d_grid as grid;
pub use tiling3d_loopnest as loopnest;
pub use tiling3d_multigrid as multigrid;
pub use tiling3d_obs as obs;
pub use tiling3d_stencil as stencil;
